package scenario

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"

	"deltasched/internal/core"
	"deltasched/internal/envelope"
	"deltasched/internal/experiments"
	"deltasched/internal/measure"
	"deltasched/internal/obs"
	"deltasched/internal/randx"
	"deltasched/internal/sim"
	"deltasched/internal/traffic"
)

// simSpec describes one tandem simulation run by the sim backend: the
// paper's Fig. 1 topology with N0 through flows crossing H nodes and Nc
// cross flows joining at each node.
type simSpec struct {
	Src      envelope.MMOO
	H        int
	C        float64
	N0, Nc   int
	CountAgg bool // drive aggregates by the O(1) ON-count chain instead of per-flow draws
	MkSched  func(node int) sim.Scheduler
	Slots    int // total slot budget; replication splits it into Slots/Reps per run
	Seed     int64
	Every    int // probe sampling stride; 0 disables the probe
	Progress func(done, total int)

	// Reps splits the slot budget into that many independent replications
	// with disjoint SplitMix64-derived seeds, run concurrently and merged.
	// Reps <= 1 is the legacy single run: one Tandem.Run over the full
	// budget, seeded with Seed itself — bit-identical to pre-replication
	// outputs. SimWorkers bounds the concurrent replications (0 = all
	// cores).
	Reps       int
	SimWorkers int

	// Measure selects the measurement backend: BackendExact (default)
	// retains the full per-slot sample set, byte-identical to the
	// pre-seam pipeline; BackendSketch streams slots through a
	// fixed-memory quantile sketch, so summary memory is O(1) in Slots.
	Measure measure.Backend
}

// runTandem executes the simulation and returns the through-flow delay
// summary on the spec's measurement backend, the run counters, and the
// per-node probe (nil when Every is 0). The RNG is seeded
// deterministically so a (spec, seed, backend) triple is reproducible.
// The exact backend records through the retained-curve DelayRecorder
// (byte-identical to the pre-seam pipeline); the sketch backend streams
// each slot straight into a fixed-memory summary via Tandem.Sink.
func runTandem(ctx context.Context, spec simSpec) (measure.Summary, sim.Stats, *obs.SimProbe, error) {
	if spec.Slots <= 0 {
		return nil, sim.Stats{}, nil, fmt.Errorf("%w: slots must be positive, got %d", core.ErrBadConfig, spec.Slots)
	}
	// The concrete randx generator replays rand.New(rand.NewSource(seed))'s
	// stream bit for bit while letting the traffic layer devirtualize its
	// per-slot draws (see randx.Rand); seeded runs keep their goldens.
	rng := randx.NewRand(spec.Seed)
	// The two constructions sample the same aggregate law from different
	// RNG streams: per-source consumes n draws per slot, the count chain
	// two binomial draws (see internal/traffic).
	mkAgg := func(n int) (traffic.Source, error) {
		if spec.CountAgg {
			return traffic.NewMMOOCountAggregate(spec.Src, n, rng)
		}
		return traffic.NewMMOOAggregate(spec.Src, n, rng)
	}
	through, err := mkAgg(spec.N0)
	if err != nil {
		return nil, sim.Stats{}, nil, err
	}
	cross := make([]traffic.Source, spec.H)
	for i := range cross {
		cs, err := mkAgg(spec.Nc)
		if err != nil {
			return nil, sim.Stats{}, nil, err
		}
		cross[i] = cs
	}
	tan := &sim.Tandem{
		C:         spec.C,
		Through:   through,
		Cross:     cross,
		MakeSched: spec.MkSched,
		Ctx:       ctx,
		Progress:  spec.Progress,
	}
	var probe *obs.SimProbe
	if spec.Every > 0 {
		probe = &obs.SimProbe{Every: spec.Every}
		tan.Probe = probe
	}
	var stream *measure.StreamRecorder
	if spec.Measure != measure.BackendExact {
		stream = measure.NewStreamRecorder(spec.Measure.New())
		tan.Sink = stream
	}
	_, sp := obs.StartSpan(ctx, "simulate")
	if sp != nil {
		sp.SetAttr("slots", spec.Slots)
		sp.SetAttr("seed", spec.Seed)
		sp.SetAttr("measure", spec.Measure.String())
	}
	rec, stats, err := tan.Run(spec.Slots)
	sp.End()
	if err != nil {
		return nil, sim.Stats{}, nil, err
	}
	var sum measure.Summary
	if stream != nil {
		sum = stream.Finish()
	} else {
		d := rec.Distribution()
		sum = &d
	}
	si := simIntrospect()
	si.Slots.Add(int64(spec.Slots))
	si.Replications.Inc()
	return sum, stats, probe, nil
}

// SchedulerFor maps a scheduler name to a simulator scheduler factory and
// the Δ_{0,c} constant that summarizes it for the analysis. GPS and DRR
// are not Δ-schedulers; they report delta = NaN and the analytic backend
// falls back to the BMUX bound (valid for any work-conserving
// locally-FIFO discipline).
func SchedulerFor(name string, d0, dc, w0, wc float64) (func(int) sim.Scheduler, float64, error) {
	switch name {
	case "fifo":
		return func(int) sim.Scheduler { return sim.NewFIFO() }, 0, nil
	case "bmux":
		return func(int) sim.Scheduler { return sim.NewBMUX(sim.ThroughFlow) }, math.Inf(1), nil
	case "sp":
		return func(int) sim.Scheduler {
			return sim.NewSP(map[core.FlowID]int{sim.ThroughFlow: 2, sim.CrossFlow: 1})
		}, math.Inf(-1), nil
	case "edf":
		return func(int) sim.Scheduler {
			return sim.NewEDF(map[core.FlowID]float64{sim.ThroughFlow: d0, sim.CrossFlow: dc})
		}, d0 - dc, nil
	case "gps":
		return func(int) sim.Scheduler {
			g, err := sim.NewGPS(map[core.FlowID]float64{sim.ThroughFlow: w0, sim.CrossFlow: wc})
			if err != nil {
				panic(err) // weights validated by validateWeights below
			}
			return g
		}, math.NaN(), validateWeights(w0, wc)
	case "drr":
		return func(int) sim.Scheduler {
			d, err := sim.NewDRR(map[core.FlowID]float64{sim.ThroughFlow: w0, sim.CrossFlow: wc})
			if err != nil {
				panic(err) // weights validated by validateWeights below
			}
			return d
		}, math.NaN(), validateWeights(w0, wc)
	default:
		return nil, 0, fmt.Errorf("unknown scheduler %q", name)
	}
}

func validateWeights(w0, wc float64) error {
	if w0 <= 0 || wc <= 0 {
		return fmt.Errorf("gps weights must be positive (w0=%g, wc=%g)", w0, wc)
	}
	return nil
}

// repOutcome is the result of a (possibly replicated) tandem simulation:
// the pooled delay summary for point estimates, the per-replication
// summaries for confidence intervals, the aggregate counters, and the
// probe of replication 0 (probes observe a single sample path). The
// summaries share one backend: exact Distributions or fixed-memory
// Sketches, per simSpec.Measure.
type repOutcome struct {
	Dist        measure.Summary   // pooled over all replications
	PerRep      []measure.Summary // one per replication, in index order
	Stats       sim.Stats         // volumes summed; MaxBacklog is the max over replications
	Probe       *obs.SimProbe
	Reps        int
	SlotsPerRep int
}

// runReplicated fans a simulation point out over Reps independent
// replications: the slot budget splits into Slots/Reps per replication,
// replication i runs with the i-th SplitMix64-derived seed, and the
// replications execute concurrently on a bounded worker pool
// (experiments.ParMapCtx: cancellation, panic isolation). Results merge
// in replication index order, so for a fixed (seed, reps) the outcome is
// bit-identical regardless of worker count or completion order. Reps <= 1
// degenerates to the legacy single run seeded with the root seed.
func runReplicated(ctx context.Context, spec simSpec) (repOutcome, error) {
	reps := spec.Reps
	if reps <= 1 {
		sum, stats, probe, err := runTandem(ctx, spec)
		if err != nil {
			return repOutcome{}, err
		}
		simIntrospect().CensoredKbit.Add(int64(sum.CensoredBits()))
		return repOutcome{
			Dist:        sum,
			PerRep:      []measure.Summary{sum},
			Stats:       stats,
			Probe:       probe,
			Reps:        1,
			SlotsPerRep: spec.Slots,
		}, nil
	}
	perRepSlots := spec.Slots / reps
	if perRepSlots < 1 {
		return repOutcome{}, fmt.Errorf("%w: %d slots cannot split into %d replications",
			core.ErrBadConfig, spec.Slots, reps)
	}

	// Per-replication slot progress folds into one (done, total) stream;
	// the lock serializes the calls and keeps the aggregate monotonic.
	var onSlots func(rep, done int)
	if spec.Progress != nil {
		var mu sync.Mutex
		done := make([]int, reps)
		total := reps * perRepSlots
		report := spec.Progress
		onSlots = func(rep, d int) {
			mu.Lock()
			defer mu.Unlock()
			done[rep] = d
			sum := 0
			for _, v := range done {
				sum += v
			}
			report(sum, total)
		}
	}

	seeds := randx.NewSeedStream(spec.Seed)
	idx := make([]int, reps)
	for i := range idx {
		idx[i] = i
	}
	type repResult struct {
		sum   measure.Summary
		stats sim.Stats
		probe *obs.SimProbe
	}
	results, _, err := experiments.ParMapCtx(ctx, spec.SimWorkers, idx,
		func(rctx context.Context, rep int) (repResult, error) {
			rspec := spec
			rspec.Slots = perRepSlots
			rspec.Seed = seeds.Seed(rep)
			rspec.Progress = nil
			if onSlots != nil {
				r := rep
				rspec.Progress = func(d, _ int) { onSlots(r, d) }
			}
			if rep != 0 {
				rspec.Every = 0 // the probe follows one sample path: replication 0
			}
			sum, stats, probe, err := runTandem(rctx, rspec)
			if err != nil {
				return repResult{}, fmt.Errorf("replication %d: %w", rep, err)
			}
			return repResult{sum: sum, stats: stats, probe: probe}, nil
		}, experiments.RunOptions{Policy: experiments.FailFast})
	if err != nil {
		return repOutcome{}, err
	}

	out := repOutcome{
		PerRep:      make([]measure.Summary, reps),
		Probe:       results[0].probe,
		Reps:        reps,
		SlotsPerRep: perRepSlots,
	}
	for i, r := range results {
		out.PerRep[i] = r.sum
		out.Stats.ThroughArrived += r.stats.ThroughArrived
		out.Stats.ThroughLeft += r.stats.ThroughLeft
		out.Stats.CrossArrived += r.stats.CrossArrived
		if r.stats.MaxBacklog > out.Stats.MaxBacklog {
			out.Stats.MaxBacklog = r.stats.MaxBacklog
		}
	}
	// MergeSummaries folds in replication index order over a clone —
	// on the exact backend this is bit-identical to the former
	// MergedDistribution fold, so pooled results stay worker-count
	// invariant and byte-identical to the pre-seam pipeline.
	_, msp := obs.StartSpan(ctx, "merge")
	pooled, err := measure.MergeSummaries(out.PerRep)
	msp.End()
	if err != nil {
		return repOutcome{}, err
	}
	out.Dist = pooled
	si := simIntrospect()
	si.MergeOps.Add(int64(reps))
	si.CensoredKbit.Add(int64(out.Dist.CensoredBits()))
	return out, nil
}

// simMetrics condenses a simulated delay summary into the named
// empirical metrics of a Result: the delay quantile at 1−simeps, the
// observed maximum, the censored (horizon-truncated) mass, and — when a
// finite analytic bound is available — the empirical violation fraction
// of that bound. With two or more replications the per-replication
// estimates additionally yield Student-t 95% confidence half-widths.
// On the sketch backend the summary's guaranteed quantile rank-error
// bound is reported alongside, and the pooled summary's resident size
// lands in both the metrics and the sim_summary_bytes gauge so the
// exact-vs-sketch memory gap is observable in /metrics and RunReports.
func simMetrics(out repOutcome, simeps, bound float64) map[string]float64 {
	dist := out.Dist
	m := map[string]float64{
		"sim_max_backlog_kbit":     out.Stats.MaxBacklog,
		"sim_through_arrived_kbit": out.Stats.ThroughArrived,
		"sim_censored_fraction":    dist.CensoredFraction(),
		"sim_summary_bytes":        float64(dist.MemoryBytes()),
	}
	obs.Default.Gauge("sim_summary_bytes",
		"resident size of the pooled delay summary (exact grows with the horizon, sketch is O(1))",
		obs.Labels{"backend": dist.BackendName()}).Set(float64(dist.MemoryBytes()))
	if re := dist.RankError(); re > 0 {
		m["sim_quantile_rank_error"] = re
	}
	if cf := m["sim_censored_fraction"]; cf > simeps {
		fmt.Fprintf(os.Stderr,
			"warning: %.3g of the observed volume is right-censored by the horizon (> simeps %.3g); the %g-quantile is biased low — raise -slots or lower -reps\n",
			cf, simeps, 1-simeps)
	}
	if q, err := dist.Quantile(1 - simeps); err == nil {
		m["sim_delay_quantile_slots"] = float64(q)
	}
	if mx, err := dist.Max(); err == nil {
		m["sim_delay_max_slots"] = float64(mx)
	}
	finiteBound := !math.IsNaN(bound) && !math.IsInf(bound, 0)
	if finiteBound {
		m["sim_violation_fraction"] = dist.ViolationFraction(bound)
	}
	if out.Reps >= 2 {
		m["sim_reps"] = float64(out.Reps)
		if mean, half, err := measure.QuantileCI(out.PerRep, 1-simeps); err == nil {
			m["sim_delay_quantile_mean_slots"] = mean
			m["sim_delay_quantile_ci_slots"] = half
			// The CI half-width captures replication noise only; on the
			// sketch backend each per-replication quantile additionally
			// carries this deterministic rank-error bound.
			if re := measure.MaxRankError(out.PerRep); re > 0 {
				m["sim_quantile_ci_rank_error"] = re
			}
		}
		if finiteBound {
			if mean, half, err := measure.ViolationFractionCI(out.PerRep, bound); err == nil {
				m["sim_violation_fraction_mean"] = mean
				m["sim_violation_fraction_ci"] = half
			}
		}
	}
	return m
}
