package scenario

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"deltasched/internal/core"
	"deltasched/internal/envelope"
	"deltasched/internal/measure"
	"deltasched/internal/obs"
	"deltasched/internal/sim"
	"deltasched/internal/traffic"
)

// simSpec describes one tandem simulation run by the sim backend: the
// paper's Fig. 1 topology with N0 through flows crossing H nodes and Nc
// cross flows joining at each node.
type simSpec struct {
	Src      envelope.MMOO
	H        int
	C        float64
	N0, Nc   int
	CountAgg bool // drive aggregates by the O(1) ON-count chain instead of per-flow draws
	MkSched  func(node int) sim.Scheduler
	Slots    int
	Seed     int64
	Every    int // probe sampling stride; 0 disables the probe
	Progress func(done, total int)
}

// runTandem executes the simulation and returns the through-flow delay
// recorder, the run counters, and the per-node probe (nil when Every is
// 0). The RNG is seeded deterministically so a (spec, seed) pair is
// reproducible.
func runTandem(ctx context.Context, spec simSpec) (*measure.DelayRecorder, sim.Stats, *obs.SimProbe, error) {
	if spec.Slots <= 0 {
		return nil, sim.Stats{}, nil, fmt.Errorf("%w: slots must be positive, got %d", core.ErrBadConfig, spec.Slots)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	// The two constructions sample the same aggregate law from different
	// RNG streams: per-source consumes n draws per slot, the count chain
	// two binomial draws (see internal/traffic).
	mkAgg := func(n int) (traffic.Source, error) {
		if spec.CountAgg {
			return traffic.NewMMOOCountAggregate(spec.Src, n, rng)
		}
		return traffic.NewMMOOAggregate(spec.Src, n, rng)
	}
	through, err := mkAgg(spec.N0)
	if err != nil {
		return nil, sim.Stats{}, nil, err
	}
	cross := make([]traffic.Source, spec.H)
	for i := range cross {
		cs, err := mkAgg(spec.Nc)
		if err != nil {
			return nil, sim.Stats{}, nil, err
		}
		cross[i] = cs
	}
	tan := &sim.Tandem{
		C:         spec.C,
		Through:   through,
		Cross:     cross,
		MakeSched: spec.MkSched,
		Ctx:       ctx,
		Progress:  spec.Progress,
	}
	var probe *obs.SimProbe
	if spec.Every > 0 {
		probe = &obs.SimProbe{Every: spec.Every}
		tan.Probe = probe
	}
	rec, stats, err := tan.Run(spec.Slots)
	if err != nil {
		return nil, sim.Stats{}, nil, err
	}
	return rec, stats, probe, nil
}

// SchedulerFor maps a scheduler name to a simulator scheduler factory and
// the Δ_{0,c} constant that summarizes it for the analysis. GPS and DRR
// are not Δ-schedulers; they report delta = NaN and the analytic backend
// falls back to the BMUX bound (valid for any work-conserving
// locally-FIFO discipline).
func SchedulerFor(name string, d0, dc, w0, wc float64) (func(int) sim.Scheduler, float64, error) {
	switch name {
	case "fifo":
		return func(int) sim.Scheduler { return sim.NewFIFO() }, 0, nil
	case "bmux":
		return func(int) sim.Scheduler { return sim.NewBMUX(sim.ThroughFlow) }, math.Inf(1), nil
	case "sp":
		return func(int) sim.Scheduler {
			return sim.NewSP(map[core.FlowID]int{sim.ThroughFlow: 2, sim.CrossFlow: 1})
		}, math.Inf(-1), nil
	case "edf":
		return func(int) sim.Scheduler {
			return sim.NewEDF(map[core.FlowID]float64{sim.ThroughFlow: d0, sim.CrossFlow: dc})
		}, d0 - dc, nil
	case "gps":
		return func(int) sim.Scheduler {
			g, err := sim.NewGPS(map[core.FlowID]float64{sim.ThroughFlow: w0, sim.CrossFlow: wc})
			if err != nil {
				panic(err) // weights validated by validateWeights below
			}
			return g
		}, math.NaN(), validateWeights(w0, wc)
	case "drr":
		return func(int) sim.Scheduler {
			d, err := sim.NewDRR(map[core.FlowID]float64{sim.ThroughFlow: w0, sim.CrossFlow: wc})
			if err != nil {
				panic(err) // weights validated by validateWeights below
			}
			return d
		}, math.NaN(), validateWeights(w0, wc)
	default:
		return nil, 0, fmt.Errorf("unknown scheduler %q", name)
	}
}

func validateWeights(w0, wc float64) error {
	if w0 <= 0 || wc <= 0 {
		return fmt.Errorf("gps weights must be positive (w0=%g, wc=%g)", w0, wc)
	}
	return nil
}

// simMetrics condenses a simulated delay distribution into the named
// empirical metrics of a Result: the delay quantile at 1−simeps, the
// observed maximum, and — when a finite analytic bound is available —
// the empirical violation fraction of that bound.
func simMetrics(dist measure.Distribution, stats sim.Stats, simeps, bound float64) map[string]float64 {
	m := map[string]float64{
		"sim_max_backlog_kbit":     stats.MaxBacklog,
		"sim_through_arrived_kbit": stats.ThroughArrived,
	}
	if q, err := dist.Quantile(1 - simeps); err == nil {
		m["sim_delay_quantile_slots"] = float64(q)
	}
	if mx, err := dist.Max(); err == nil {
		m["sim_delay_max_slots"] = float64(mx)
	}
	if !math.IsNaN(bound) && !math.IsInf(bound, 0) {
		m["sim_violation_fraction"] = dist.ViolationFraction(bound)
	}
	return m
}
