package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestASCIIRendersAllSeries(t *testing.T) {
	var buf bytes.Buffer
	s1 := Series{Label: "alpha", X: []float64{0, 1, 2}, Y: []float64{1, 2, 3}}
	s2 := Series{Label: "beta", X: []float64{0, 1, 2}, Y: []float64{3, 2, 1}}
	err := ASCII(&buf, Options{Title: "T", XLabel: "x", YLabel: "y"}, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T", "alpha", "beta", "*", "o", "x: x"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestASCIILogYSkipsNonPositive(t *testing.T) {
	var buf bytes.Buffer
	s := Series{Label: "l", X: []float64{0, 1, 2}, Y: []float64{0, 10, 100}}
	if err := ASCII(&buf, Options{LogY: true}, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Error("log chart should still plot the positive points")
	}
}

func TestASCIIErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := ASCII(&buf, Options{}); err == nil {
		t.Error("no series must error")
	}
	bad := Series{Label: "b", X: []float64{1}, Y: []float64{1, 2}}
	if err := ASCII(&buf, Options{}, bad); err == nil {
		t.Error("mismatched lengths must error")
	}
	nan := Series{Label: "n", X: []float64{1}, Y: []float64{math.NaN()}}
	if err := ASCII(&buf, Options{}, nan); err == nil {
		t.Error("all-NaN series must error")
	}
}

func TestCSVFormat(t *testing.T) {
	var buf bytes.Buffer
	s := Series{Label: "fifo, H=2", X: []float64{1, 2}, Y: []float64{3.5, 4}}
	if err := CSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "series,x,y\n\"fifo, H=2\",1,3.5\n\"fifo, H=2\",2,4\n"
	if got != want {
		t.Fatalf("CSV output:\n%q\nwant:\n%q", got, want)
	}
}

func TestTableAlignsRows(t *testing.T) {
	var buf bytes.Buffer
	a := Series{Label: "A", X: []float64{1, 2}, Y: []float64{10, 20}}
	b := Series{Label: "B", X: []float64{2, 3}, Y: []float64{200, 300}}
	if err := Table(&buf, "H", a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "H") || !strings.Contains(out, "-") {
		t.Errorf("table missing header or placeholder:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 4 { // header + 3 x-values
		t.Errorf("expected 4 lines, got %d:\n%s", lines, out)
	}
}
