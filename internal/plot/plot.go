// Package plot renders experiment series as ASCII line charts and CSV —
// the pure-Go substitution for the numeric plotting environment used to
// produce the paper's figures (DESIGN.md, substitutions table).
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Validate checks the series shape.
func (s Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q: %d x-values vs %d y-values", s.Label, len(s.X), len(s.Y))
	}
	if len(s.X) == 0 {
		return fmt.Errorf("plot: series %q is empty", s.Label)
	}
	return nil
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Options configures an ASCII chart.
type Options struct {
	Title  string
	XLabel string
	YLabel string
	Width  int  // plot area columns (default 72)
	Height int  // plot area rows (default 20)
	LogY   bool // logarithmic y axis
}

// ASCII renders the series as a text chart.
func ASCII(w io.Writer, opt Options, series ...Series) error {
	if len(series) == 0 {
		return errors.New("plot: no series")
	}
	if opt.Width <= 0 {
		opt.Width = 72
	}
	if opt.Height <= 0 {
		opt.Height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if opt.LogY && y <= 0 {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if xmin > xmax || ymin > ymax {
		return errors.New("plot: no finite data points")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	tf := func(y float64) float64 { return y }
	if opt.LogY {
		tf = math.Log10
	}
	lo, hi := tf(ymin), tf(ymax)

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if opt.LogY && y <= 0 {
				continue
			}
			cx := int(math.Round((x - xmin) / (xmax - xmin) * float64(opt.Width-1)))
			cy := int(math.Round((tf(y) - lo) / (hi - lo) * float64(opt.Height-1)))
			row := opt.Height - 1 - cy
			grid[row][cx] = mark
		}
	}

	if opt.Title != "" {
		fmt.Fprintf(w, "%s\n", opt.Title)
	}
	yfmt := func(v float64) string { return fmt.Sprintf("%10.3g", v) }
	for r := 0; r < opt.Height; r++ {
		frac := float64(opt.Height-1-r) / float64(opt.Height-1)
		yv := lo + frac*(hi-lo)
		if opt.LogY {
			yv = math.Pow(10, yv)
		}
		label := strings.Repeat(" ", 10)
		if r == 0 || r == opt.Height-1 || r == opt.Height/2 {
			label = yfmt(yv)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", opt.Width))
	fmt.Fprintf(w, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", 10), opt.Width/2, xmin, opt.Width-opt.Width/2, xmax)
	if opt.XLabel != "" || opt.YLabel != "" {
		fmt.Fprintf(w, "%s  x: %s    y: %s\n", strings.Repeat(" ", 10), opt.XLabel, opt.YLabel)
	}
	for si, s := range series {
		fmt.Fprintf(w, "%s  %c %s\n", strings.Repeat(" ", 10), markers[si%len(markers)], s.Label)
	}
	return nil
}

// CSV writes the series in long format: label,x,y — one row per point,
// sorted by label then x, suitable for any downstream plotting tool.
func CSV(w io.Writer, series ...Series) error {
	if len(series) == 0 {
		return errors.New("plot: no series")
	}
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	ordered := append([]Series(nil), series...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Label < ordered[j].Label })
	for _, s := range ordered {
		if err := s.Validate(); err != nil {
			return err
		}
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Label), s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Table renders series as an aligned text table with one row per x value
// and one column per series — the "same rows the paper reports" format.
func Table(w io.Writer, xName string, series ...Series) error {
	if len(series) == 0 {
		return errors.New("plot: no series")
	}
	// Collect the union of x values.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)

	fmt.Fprintf(w, "%-12s", xName)
	for _, s := range series {
		fmt.Fprintf(w, " %16s", truncate(s.Label, 16))
	}
	fmt.Fprintln(w)
	for _, x := range xs {
		fmt.Fprintf(w, "%-12.4g", x)
		for _, s := range series {
			v, ok := lookup(s, x)
			if !ok {
				fmt.Fprintf(w, " %16s", "-")
				continue
			}
			fmt.Fprintf(w, " %16.4g", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func lookup(s Series, x float64) (float64, bool) {
	for i := range s.X {
		if s.X[i] == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
