package envelope

import (
	"math"
	"math/rand"
	"testing"
)

// mergeList materializes the [bg, bc, per×(h−1)] list exactly as core's
// pre-table pathBound did and runs it through Merge — the reference the
// PathPricer's replayed arithmetic must match bit for bit.
func mergeList(through, cross ExpBound, h int, gamma float64) ExpBound {
	bg := ExpBound{M: through.M / (1 - math.Exp(-through.Alpha*gamma)), Alpha: through.Alpha}
	bc := ExpBound{M: cross.M / (1 - math.Exp(-cross.Alpha*gamma)), Alpha: cross.Alpha}
	bounds := []ExpBound{bg, bc}
	if h > 1 {
		q := 1 - math.Exp(-bc.Alpha*gamma)
		per := ExpBound{M: bc.M / q, Alpha: bc.Alpha}
		for i := 1; i < h; i++ {
			bounds = append(bounds, per)
		}
	}
	merged, err := Merge(bounds...)
	if err != nil {
		panic(err)
	}
	return merged
}

func TestPathPricerBitIdenticalToMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	check := func(through, cross ExpBound, h int, gamma float64) {
		t.Helper()
		p := NewPathPricer(through, cross, h)
		got := p.BoundAt(gamma)
		want := mergeList(through, cross, h, gamma)
		if math.Float64bits(got.M) != math.Float64bits(want.M) ||
			math.Float64bits(got.Alpha) != math.Float64bits(want.Alpha) {
			t.Fatalf("BoundAt(%g) h=%d through=%+v cross=%+v:\n got {%v %v}\nwant {%v %v}",
				gamma, h, through, cross, got.M, got.Alpha, want.M, want.Alpha)
		}
		if p.Segments() != h+1 {
			t.Fatalf("Segments() = %d, want %d", p.Segments(), h+1)
		}
	}

	// The structured corners: shared decay, shared prefactor, both, neither.
	corners := []struct{ through, cross ExpBound }{
		{ExpBound{M: 1, Alpha: 0.1}, ExpBound{M: 1, Alpha: 0.1}},
		{ExpBound{M: 2, Alpha: 0.1}, ExpBound{M: 1, Alpha: 0.1}},
		{ExpBound{M: 1, Alpha: 0.1}, ExpBound{M: 1, Alpha: 0.37}},
		{ExpBound{M: 3.5, Alpha: 0.22}, ExpBound{M: 1.2, Alpha: 0.05}},
	}
	for _, c := range corners {
		for _, h := range []int{1, 2, 5, 20} {
			for _, gamma := range []float64{1e-9, 1e-3, 0.5, 3, 40} {
				check(c.through, c.cross, h, gamma)
			}
		}
	}
	for trial := 0; trial < 400; trial++ {
		through := ExpBound{M: 1 + 4*rng.Float64(), Alpha: 0.01 + rng.Float64()}
		cross := ExpBound{M: 1 + 4*rng.Float64(), Alpha: 0.01 + rng.Float64()}
		check(through, cross, 1+rng.Intn(30), math.Exp(8*rng.Float64()-6))
	}
}

func TestPathPricerThroughBound(t *testing.T) {
	through := ExpBound{M: 1.5, Alpha: 0.12}
	p := NewPathPricer(through, ExpBound{M: 1, Alpha: 0.3}, 7)
	for _, gamma := range []float64{1e-6, 0.2, 5} {
		got := p.ThroughBoundAt(gamma)
		want := ExpBound{M: through.M / (1 - math.Exp(-through.Alpha*gamma)), Alpha: through.Alpha}
		if math.Float64bits(got.M) != math.Float64bits(want.M) || got.Alpha != want.Alpha {
			t.Fatalf("ThroughBoundAt(%g): got %+v want %+v", gamma, got, want)
		}
	}
}

func TestPairPricerBitIdenticalToMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 500; trial++ {
		a1 := 0.01 + rng.Float64()
		a2 := 0.01 + rng.Float64()
		m1 := 1 + 100*rng.Float64()
		m2 := 1 + 100*rng.Float64()
		p := NewPairPricer(a1, a2)
		want, err := Merge(ExpBound{M: m1, Alpha: a1}, ExpBound{M: m2, Alpha: a2})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.MergeM(m1, m2); math.Float64bits(got) != math.Float64bits(want.M) {
			t.Fatalf("MergeM(%g,%g) a1=%g a2=%g: got %v want %v", m1, m2, a1, a2, got, want.M)
		}
		if got := p.Alpha(); math.Float64bits(got) != math.Float64bits(want.Alpha) {
			t.Fatalf("Alpha() a1=%g a2=%g: got %v want %v", a1, a2, got, want.Alpha)
		}
	}
}
