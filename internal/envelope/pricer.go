package envelope

import "math"

// PathPricer is the γ-independent part of the end-to-end path bound
// assembly: Merge over the bound list [bg, bc, per×(h−1)] that
// core's pathBound builds per γ probe. For fixed traffic descriptions
// the merged decay w = Σ 1/α_j and the per-term weights α_j·w never
// change across the γ sweep, so they are priced once here; BoundAt
// then pays only the γ-dependent exponentials and logarithms per
// probe.
//
// The arithmetic of BoundAt replays Merge's operation order
// expression for expression — same sums in the same sequence, same
// association of products — so its results are bit-identical to
// building the slice and calling Merge. That contract is what lets
// core keep its CSV goldens byte-identical; it is pinned by property
// tests in internal/core.
type PathPricer struct {
	through, cross ExpBound // increment bounds (M, α) of the two aggregates
	h              int

	w    float64 // Σ 1/α over the h+1 merged terms, summed in Merge's order
	atw  float64 // through.Alpha · w
	acw  float64 // cross.Alpha · w
	invW float64 // 1 / w — the merged bound's Alpha

	sameAlpha bool // cross.Alpha == through.Alpha: one union-bound denominator
	sameM     bool // sameAlpha && cross.M == through.M: bc's log term equals bg's
}

// NewPathPricer prices the structure of the h-hop path bound for the
// given through/cross increment bounds. Increment prefactors are
// required positive (EBB validation guarantees M >= 1); h >= 1.
func NewPathPricer(through, cross ExpBound, h int) PathPricer {
	p := PathPricer{through: through, cross: cross, h: h}
	// Merge's w accumulates sequentially over [bg, bc, per, per, ...];
	// bg/bc/per all inherit the increment bounds' alphas.
	w := 0.0
	w += 1 / through.Alpha
	w += 1 / cross.Alpha
	for i := 1; i < h; i++ {
		w += 1 / cross.Alpha
	}
	p.w = w
	p.atw = through.Alpha * w
	p.acw = cross.Alpha * w
	p.invW = 1 / w
	p.sameAlpha = cross.Alpha == through.Alpha
	p.sameM = p.sameAlpha && cross.M == through.M
	return p
}

// BoundAt returns the merged path bound at rate slack gamma > 0,
// bit-identical to
//
//	bg  := {through.M / (1 − e^{−α_t γ}), α_t}
//	bc  := {cross.M   / (1 − e^{−α_c γ}), α_c}
//	per := {bc.M / (1 − e^{−α_c γ}), α_c}   // ×(h−1)
//	Merge(bg, bc, per, ..., per)
//
// which is exactly the list core's pathBound assembles. The prefactors
// are strictly positive (M >= 1 over a finite denominator), so Merge's
// zero-term skip never fires and the log sum runs over every term.
func (p *PathPricer) BoundAt(gamma float64) ExpBound {
	qt := 1 - math.Exp(-p.through.Alpha*gamma)
	bgM := p.through.M / qt
	qc := qt
	if !p.sameAlpha {
		qc = 1 - math.Exp(-p.cross.Alpha*gamma)
	}
	bcM := p.cross.M / qc

	// Merge's logM accumulates sequentially: bg's term, bc's term, then
	// h−1 identical per-hop terms. Adding the same float64 k times is
	// reproduced by the loop below exactly as Merge's range does it.
	tg := math.Log(bgM*p.through.Alpha*p.w) / p.atw
	logM := tg
	if p.sameM {
		logM += tg
	} else {
		logM += math.Log(bcM*p.cross.Alpha*p.w) / p.acw
	}
	if p.h > 1 {
		perM := bcM / qc
		tp := math.Log(perM*p.cross.Alpha*p.w) / p.acw
		for i := 1; i < p.h; i++ {
			logM += tp
		}
	}
	return ExpBound{M: math.Exp(logM), Alpha: p.invW}
}

// ThroughBoundAt returns only the through aggregate's sample-path
// bound at gamma — the strict-priority (Δ = −∞) case, where Theorem 1
// removes the cross traffic from the path bound entirely. Bit-identical
// to {through.M / (1 − e^{−α_t γ}), α_t}.
func (p *PathPricer) ThroughBoundAt(gamma float64) ExpBound {
	return ExpBound{M: p.through.M / (1 - math.Exp(-p.through.Alpha*gamma)), Alpha: p.through.Alpha}
}

// Segments returns the number of envelope segments a BoundAt evaluation
// stands in for (the length of the merged list), for introspection
// accounting parity with the materialized path.
func (p *PathPricer) Segments() int { return p.h + 1 }

// PairPricer is the γ-independent part of Merge(a, b) for two bounds of
// fixed decays: the additive per-node recursion merges the through and
// cross sample-path bounds at every node, and while the prefactors
// change from node to node (they carry the γ-dependent union-bound
// denominators), the decay chain α_1, α_2, ... is γ-independent. MergeM
// replays Merge's arithmetic for two positive-prefactor bounds in the
// identical operation order.
type PairPricer struct {
	a1, a2 float64 // the two decays, in merge order

	w    float64 // 1/a1 + 1/a2, summed in order
	a1w  float64 // a1 · w
	a2w  float64 // a2 · w
	invW float64 // 1 / w — the merged bound's Alpha
}

// NewPairPricer prices Merge for the fixed decay pair (alpha1, alpha2),
// both > 0.
func NewPairPricer(alpha1, alpha2 float64) PairPricer {
	p := PairPricer{a1: alpha1, a2: alpha2}
	w := 0.0
	w += 1 / alpha1
	w += 1 / alpha2
	p.w = w
	p.a1w = alpha1 * w
	p.a2w = alpha2 * w
	p.invW = 1 / w
	return p
}

// MergeM returns Merge({m1, a1}, {m2, a2}).M for positive prefactors,
// bit-identical to the two-bound Merge. The merged Alpha is Alpha().
func (p *PairPricer) MergeM(m1, m2 float64) float64 {
	logM := math.Log(m1*p.a1*p.w) / p.a1w
	logM += math.Log(m2*p.a2*p.w) / p.a2w
	return math.Exp(logM)
}

// Alpha returns the merged bound's decay, 1/(1/a1 + 1/a2), with the
// same rounding as Merge's final division.
func (p *PairPricer) Alpha() float64 { return p.invW }
