package envelope

import (
	"errors"
	"fmt"
	"math"
)

// MMOO is the paper's discrete-time Markov-modulated on-off source
// (Section V): a two-state Markov chain (OFF=1, ON=2) that emits Peak data
// units per slot while ON and nothing while OFF. P11 is the OFF→OFF
// self-transition probability and P22 the ON→ON one, so the transition
// probabilities of the paper are p12 = 1−P11 (OFF→ON) and p21 = 1−P22
// (ON→OFF). The paper assumes p12 + p21 <= 1 (positively correlated,
// bursty sources).
type MMOO struct {
	Peak float64 // data emitted per slot in the ON state
	P11  float64 // P(OFF→OFF)
	P22  float64 // P(ON→ON)
}

// PaperSource returns the traffic parameters used in all numerical
// examples of the paper: P = 1.5 kbit per 1 ms slot (peak rate 1.5 Mbps),
// P11 = 0.989, P22 = 0.9, i.e. a mean rate of ≈0.15 Mbps per flow.
func PaperSource() MMOO {
	return MMOO{Peak: 1.5, P11: 0.989, P22: 0.9}
}

// Validate checks the chain parameters, including the paper's burstiness
// assumption p12 + p21 <= 1.
func (m MMOO) Validate() error {
	if m.Peak <= 0 || math.IsNaN(m.Peak) || math.IsInf(m.Peak, 0) {
		return fmt.Errorf("envelope: MMOO peak must be positive, got %g", m.Peak)
	}
	if m.P11 < 0 || m.P11 > 1 || m.P22 < 0 || m.P22 > 1 {
		return fmt.Errorf("envelope: MMOO probabilities out of [0,1]: P11=%g, P22=%g", m.P11, m.P22)
	}
	if p12, p21 := 1-m.P11, 1-m.P22; p12+p21 > 1+1e-12 {
		return fmt.Errorf("envelope: MMOO requires p12+p21 <= 1, got %g", p12+p21)
	}
	return nil
}

// OnProbability returns the stationary probability of the ON state,
// p12 / (p12 + p21).
func (m MMOO) OnProbability() float64 {
	p12, p21 := 1-m.P11, 1-m.P22
	if p12+p21 == 0 {
		return 0 // absorbing in whichever state it starts; treat as silent
	}
	return p12 / (p12 + p21)
}

// MeanRate returns the stationary mean rate Peak·P(ON) per slot.
func (m MMOO) MeanRate() float64 { return m.Peak * m.OnProbability() }

// PeakRate returns the peak rate per slot.
func (m MMOO) PeakRate() float64 { return m.Peak }

// EffectiveBandwidth returns the effective bandwidth
//
//	eb(s) = (1/s)·log λ(s),
//
// where λ(s) is the Perron root of [[p11, p12·e^{sP}], [p21, p22·e^{sP}]]
// (the paper's closed form in Section V):
//
//	λ(s) = ½·( p11 + p22·e^{sP} + sqrt( (p11+p22·e^{sP})² − 4(p11+p22−1)·e^{sP} ) ).
//
// eb is non-decreasing in s, with eb(0+) = MeanRate and eb(∞) = Peak.
func (m MMOO) EffectiveBandwidth(s float64) (float64, error) {
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return 0, fmt.Errorf("envelope: effective bandwidth needs s > 0, got %g", s)
	}
	esp := math.Exp(s * m.Peak)
	if math.IsInf(esp, 1) {
		return m.Peak, nil // saturated at the peak rate
	}
	tr := m.P11 + m.P22*esp
	det := (m.P11 + m.P22 - 1) * esp
	disc := tr*tr - 4*det
	if disc < 0 {
		disc = 0 // numeric noise: the Perron root of a nonnegative matrix is real
	}
	lambda := (tr + math.Sqrt(disc)) / 2
	return math.Log(lambda) / s, nil
}

// EBBAggregate returns the EBB characterization of an aggregate of n
// statistically independent copies of the source at decay parameter s:
// A ∼ (M=1, ρ=n·eb(s), α=s), the form used in the paper's Section V.
// n may be fractional: the analysis only consumes the aggregate rate, and
// the examples sweep utilization continuously.
func (m MMOO) EBBAggregate(n, s float64) (EBB, error) {
	if err := m.Validate(); err != nil {
		return EBB{}, err
	}
	if n < 0 {
		return EBB{}, fmt.Errorf("envelope: aggregate size must be >= 0, got %g", n)
	}
	eb, err := m.EffectiveBandwidth(s)
	if err != nil {
		return EBB{}, err
	}
	return EBB{M: 1, Rho: n * eb, Alpha: s}, nil
}

// EBMemo prices a fixed MMOO source with a one-entry effective-bandwidth
// cache. The α-sweeps of internal/core evaluate the through and the
// cross aggregate of the *same* source at the same decay s back to back
// — EffectiveBandwidth(s) does not depend on the flow count — so the
// second (and any further) Perron-root evaluation at an α becomes a
// lookup: each α is priced once per sweep, not once per aggregate. The
// source is validated once at construction, removing the per-call
// revalidation of MMOO.EBBAggregate from the sweep as well.
//
// An EBMemo is not safe for concurrent use; sweep workers should each
// own one (they are cheap to create).
type EBMemo struct {
	m      MMOO
	lastS  float64
	lastEB float64
	primed bool
}

// NewEBMemo validates the source and returns a memoizing pricer.
func NewEBMemo(m MMOO) (*EBMemo, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &EBMemo{m: m}, nil
}

// Source returns the wrapped model.
func (c *EBMemo) Source() MMOO { return c.m }

// EffectiveBandwidth returns m.EffectiveBandwidth(s), cached for
// consecutive calls with equal s.
func (c *EBMemo) EffectiveBandwidth(s float64) (float64, error) {
	if c.primed && s == c.lastS {
		return c.lastEB, nil
	}
	eb, err := c.m.EffectiveBandwidth(s)
	if err != nil {
		return 0, err
	}
	c.lastS, c.lastEB, c.primed = s, eb, true
	return eb, nil
}

// EBBAggregate mirrors MMOO.EBBAggregate through the cache: n iid copies
// at decay s yield A ∼ (M=1, ρ=n·eb(s), α=s).
func (c *EBMemo) EBBAggregate(n, s float64) (EBB, error) {
	if n < 0 {
		return EBB{}, fmt.Errorf("envelope: aggregate size must be >= 0, got %g", n)
	}
	eb, err := c.EffectiveBandwidth(s)
	if err != nil {
		return EBB{}, err
	}
	return EBB{M: 1, Rho: n * eb, Alpha: s}, nil
}

// FlowsForUtilization returns the number of flows n such that n·MeanRate
// equals util·capacity — how the paper translates a utilization target
// into a flow count.
func (m MMOO) FlowsForUtilization(util, capacity float64) (float64, error) {
	mean := m.MeanRate()
	if mean <= 0 {
		return 0, errors.New("envelope: source has zero mean rate")
	}
	if util < 0 || capacity <= 0 {
		return 0, fmt.Errorf("envelope: need util >= 0 and capacity > 0 (util=%g, capacity=%g)", util, capacity)
	}
	return util * capacity / mean, nil
}
