package envelope

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestExpBoundValidateAndEval(t *testing.T) {
	tests := []struct {
		name    string
		b       ExpBound
		wantErr bool
	}{
		{"ok", ExpBound{M: 2, Alpha: 0.5}, false},
		{"zero M ok", ExpBound{M: 0, Alpha: 1}, false},
		{"negative M", ExpBound{M: -1, Alpha: 1}, true},
		{"zero alpha", ExpBound{M: 1, Alpha: 0}, true},
		{"nan", ExpBound{M: math.NaN(), Alpha: 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.b.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
	b := ExpBound{M: 4, Alpha: 2}
	almost(t, b.At(0), 4, 1e-12, "At(0)")
	almost(t, b.At(1), 4*math.Exp(-2), 1e-12, "At(1)")
}

func TestSigmaFor(t *testing.T) {
	b := ExpBound{M: 10, Alpha: 0.5}
	sigma := b.SigmaFor(1e-9)
	almost(t, b.At(sigma), 1e-9, 1e-15, "round trip")
	almost(t, b.SigmaFor(20), 0, 0, "target above M")
	if !math.IsInf(b.SigmaFor(0), 1) {
		t.Error("eps=0 needs infinite sigma")
	}
}

func TestMergeHomogeneous(t *testing.T) {
	// N identical bounds merge to (N·M, α/N).
	b := ExpBound{M: 3, Alpha: 0.8}
	got, err := Merge(b, b, b, b)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, got.M, 12, 1e-9, "merged M")
	almost(t, got.Alpha, 0.2, 1e-12, "merged alpha")
}

func TestMergeSingleIsIdentity(t *testing.T) {
	b := ExpBound{M: 5, Alpha: 1.3}
	got, err := Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, got.M, 5, 1e-9, "M unchanged")
	almost(t, got.Alpha, 1.3, 1e-12, "alpha unchanged")
}

func TestMergeSkipsZeroTerms(t *testing.T) {
	b := ExpBound{M: 5, Alpha: 1.3}
	got, err := Merge(b, ExpBound{M: 0, Alpha: 9})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, got.M, 5, 1e-9, "zero term ignored")
	almost(t, got.Alpha, 1.3, 1e-12, "alpha unchanged")
}

// bruteMergeAt minimizes Σ M_j e^{−α_j σ_j} subject to Σσ_j = σ, σ_j >= 0,
// by bisecting on the KKT multiplier λ: at the optimum,
// σ_j = [ln(M_j α_j / λ)/α_j]_+ (water-filling), and Σσ_j(λ) is strictly
// decreasing in λ.
func bruteMergeAt(bounds []ExpBound, sigma float64) float64 {
	sumFor := func(lam float64) (sum, total float64) {
		for _, b := range bounds {
			sj := math.Max(0, math.Log(b.M*b.Alpha/lam)/b.Alpha)
			sum += sj
			total += b.At(sj)
		}
		return sum, total
	}
	lo, hi := 1e-300, 1e300
	for i := 0; i < 300; i++ {
		mid := math.Sqrt(lo * hi)
		if s, _ := sumFor(mid); s > sigma {
			lo = mid
		} else {
			hi = mid
		}
	}
	_, total := sumFor(lo)
	return total
}

func TestMergeMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(3)
		bounds := make([]ExpBound, n)
		for i := range bounds {
			bounds[i] = ExpBound{M: 0.5 + 5*r.Float64(), Alpha: 0.1 + 2*r.Float64()}
		}
		got, err := Merge(bounds...)
		if err != nil {
			t.Fatal(err)
		}
		for _, sigma := range []float64{5, 20, 60} {
			// The closed form is the unconstrained Lagrange solution; the
			// KKT oracle respects σ_j >= 0, so oracle >= closed form, with
			// equality whenever all σ_j are interior (large σ).
			want := bruteMergeAt(bounds, sigma)
			have := got.At(sigma)
			if have > want*(1+1e-9)+1e-12 {
				t.Fatalf("trial %d σ=%g: Merge gives %g above KKT optimum %g (bounds %+v)",
					trial, sigma, have, want, bounds)
			}
			if sigma >= 20 && have < want*0.999 {
				t.Fatalf("trial %d σ=%g: Merge gives %g well below KKT optimum %g — formula error (bounds %+v)",
					trial, sigma, have, want, bounds)
			}
		}
	}
}

func TestMergeIsLowerBoundOfAnySplit(t *testing.T) {
	// The merged bound must not exceed the value of any explicit split.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := ExpBound{M: 0.5 + 5*r.Float64(), Alpha: 0.1 + 2*r.Float64()}
		b := ExpBound{M: 0.5 + 5*r.Float64(), Alpha: 0.1 + 2*r.Float64()}
		m, err := Merge(a, b)
		if err != nil {
			return false
		}
		for i := 0; i <= 20; i++ {
			sigma := float64(i) * 3
			for j := 0; j <= 10; j++ {
				s1 := sigma * float64(j) / 10
				if m.At(sigma) > a.At(s1)+b.At(sigma-s1)+1e-9 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestEBBValidate(t *testing.T) {
	tests := []struct {
		name    string
		e       EBB
		wantErr bool
	}{
		{"ok", EBB{M: 1, Rho: 5, Alpha: 0.3}, false},
		{"M below 1", EBB{M: 0.5, Rho: 5, Alpha: 0.3}, true},
		{"negative rate", EBB{M: 1, Rho: -1, Alpha: 0.3}, true},
		{"zero alpha", EBB{M: 1, Rho: 5, Alpha: 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.e.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSamplePathFormula(t *testing.T) {
	e := EBB{M: 2, Rho: 10, Alpha: 0.4}
	rate, bound, err := e.SamplePath(0.5)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, rate, 10.5, 1e-12, "rate gains gamma")
	wantM := 2 / (1 - math.Exp(-0.4*0.5))
	almost(t, bound.M, wantM, 1e-9, "prefactor M/(1−e^{−αγ})")
	almost(t, bound.Alpha, 0.4, 1e-12, "alpha unchanged")

	if _, _, err := e.SamplePath(0); err == nil {
		t.Error("gamma=0 must be rejected")
	}
}

func TestSamplePathEnvelopeShape(t *testing.T) {
	e := EBB{M: 1, Rho: 3, Alpha: 1}
	env, err := e.SamplePathEnvelope(1)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, env.G.Eval(10), 40, 1e-9, "G(t) = (rho+gamma)t")
	if env.Eps(0) <= 1 {
		t.Errorf("eps(0) = %g should exceed 1 for this M", env.Eps(0))
	}
	if e1, e2 := env.Eps(5), env.Eps(10); e1 <= e2 {
		t.Error("bounding function must decay")
	}
}

func TestSumEBBHomogeneous(t *testing.T) {
	f := EBB{M: 1, Rho: 2, Alpha: 0.6}
	agg, err := SumEBB(f, f, f)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, agg.Rho, 6, 1e-12, "rates add")
	almost(t, agg.Alpha, 0.2, 1e-12, "decay splits")
	almost(t, agg.M, 3, 1e-9, "prefactor N·M")
}

func TestDeterministicAsEBB(t *testing.T) {
	// A leaky bucket (rho=5, burst=12) encoded as EBB with finite alpha:
	// at sigma=burst the bound is exactly 1.
	e := Deterministic(5, 12, 2)
	almost(t, e.Bound().At(12), 1, 1e-9, "bound hits 1 at the burst size")
	if e.Bound().At(13) >= 1 {
		t.Error("beyond the burst the bound must drop below 1")
	}
}

func TestFitEBBOnCBRTrace(t *testing.T) {
	trace := make([]float64, 5000)
	for i := range trace {
		trace[i] = 2
	}
	e, err := FitEBB(trace, 0.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, e.Rho, 2, 1e-9, "CBR rate")
	almost(t, e.M, 1, 1e-9, "CBR needs no prefactor above 1")
}

func TestFitEBBCoversTrace(t *testing.T) {
	// A bursty trace: the fitted parameters must cover every probed
	// exceedance on the trace itself.
	r := rand.New(rand.NewSource(5))
	trace := make([]float64, 20000)
	for i := range trace {
		if r.Float64() < 0.1 {
			trace[i] = 10
		}
	}
	alpha := 0.3
	e, err := FitEBB(trace, alpha, 500)
	if err != nil {
		t.Fatal(err)
	}
	if e.M < 1 || e.Rho <= 0 {
		t.Fatalf("degenerate fit: %+v", e)
	}
	cum := make([]float64, len(trace)+1)
	for i, x := range trace {
		cum[i+1] = cum[i] + x
	}
	for _, n := range []int{1, 10, 100} {
		for _, sigma := range []float64{2, 8, 20} {
			exceed, count := 0, 0
			for s := 0; s+n <= len(trace); s++ {
				count++
				if cum[s+n]-cum[s] > e.Rho*float64(n)+sigma {
					exceed++
				}
			}
			freq := float64(exceed) / float64(count)
			// The fit probes a threshold grid; on intermediate thresholds
			// allow a small estimation factor.
			if freq > 3*e.Bound().At(sigma)+1e-3 {
				t.Errorf("window %d sigma %g: freq %g above fitted bound %g",
					n, sigma, freq, e.Bound().At(sigma))
			}
		}
	}
}

func TestFitEBBValidation(t *testing.T) {
	if _, err := FitEBB(nil, 1, 10); err == nil {
		t.Error("empty trace must be rejected")
	}
	if _, err := FitEBB([]float64{1, 2}, 0, 10); err == nil {
		t.Error("alpha=0 must be rejected")
	}
	if _, err := FitEBB([]float64{1, -2, 3}, 1, 10); err == nil {
		t.Error("negative trace values must be rejected")
	}
}

func TestSumEBBValidation(t *testing.T) {
	if _, err := SumEBB(); err == nil {
		t.Error("empty sum must be rejected")
	}
	if _, err := SumEBB(EBB{M: 0.1, Rho: 1, Alpha: 1}); err == nil {
		t.Error("invalid flow must be rejected")
	}
	// Single flow passes through (modulo the M >= 1 floor).
	e, err := SumEBB(EBB{M: 2, Rho: 3, Alpha: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, e.Rho, 3, 0, "single-flow rate")
	almost(t, e.Alpha, 0.7, 0, "single-flow alpha")
}
