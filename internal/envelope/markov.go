package envelope

import (
	"errors"
	"fmt"
	"math"
)

// MarkovSource is a general discrete-time Markov-modulated source with an
// arbitrary number of states: while in state i the source emits Rates[i]
// data units per slot, and the state evolves according to the row-
// stochastic transition matrix Trans. The two-state MMOO type is the
// special case used in the paper's examples; this generalization supports
// the extension experiments (multi-level video-like sources).
type MarkovSource struct {
	Rates []float64   // per-slot emission in each state
	Trans [][]float64 // row-stochastic transition matrix
}

// Validate checks shape and stochasticity of the chain.
func (ms MarkovSource) Validate() error {
	n := len(ms.Rates)
	if n == 0 {
		return errors.New("envelope: Markov source needs at least one state")
	}
	if len(ms.Trans) != n {
		return fmt.Errorf("envelope: transition matrix has %d rows, want %d", len(ms.Trans), n)
	}
	for i, row := range ms.Trans {
		if len(row) != n {
			return fmt.Errorf("envelope: transition row %d has %d entries, want %d", i, len(row), n)
		}
		sum := 0.0
		for _, p := range row {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return fmt.Errorf("envelope: transition probability out of range in row %d", i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("envelope: transition row %d sums to %g, want 1", i, sum)
		}
	}
	for i, r := range ms.Rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("envelope: rate %d out of range: %g", i, r)
		}
	}
	return nil
}

// Stationary returns the stationary distribution of the chain, computed by
// power iteration (the chains of interest are small and aperiodic enough;
// periodic chains are averaged over two steps).
func (ms MarkovSource) Stationary() ([]float64, error) {
	if err := ms.Validate(); err != nil {
		return nil, err
	}
	n := len(ms.Rates)
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for iter := 0; iter < 100000; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				next[j] += pi[i] * ms.Trans[i][j]
			}
		}
		diff := 0.0
		for j := range next {
			avg := (next[j] + pi[j]) / 2 // damping handles period-2 chains
			diff += math.Abs(avg - pi[j])
			pi[j] = avg
		}
		if diff < 1e-14 {
			break
		}
	}
	return pi, nil
}

// MeanRate returns the stationary mean emission per slot.
func (ms MarkovSource) MeanRate() (float64, error) {
	pi, err := ms.Stationary()
	if err != nil {
		return 0, err
	}
	mean := 0.0
	for i, p := range pi {
		mean += p * ms.Rates[i]
	}
	return mean, nil
}

// PeakRate returns the largest per-slot emission.
func (ms MarkovSource) PeakRate() float64 {
	peak := 0.0
	for _, r := range ms.Rates {
		if r > peak {
			peak = r
		}
	}
	return peak
}

// EffectiveBandwidth returns eb(s) = (1/s)·log ρ( P·diag(e^{s·r}) ), the
// Kesidis/Chang effective bandwidth of a Markov-modulated source, computed
// by power iteration on the nonnegative matrix M(s)_{ij} = P_{ij}·e^{s·r_j}.
func (ms MarkovSource) EffectiveBandwidth(s float64) (float64, error) {
	if err := ms.Validate(); err != nil {
		return 0, err
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return 0, fmt.Errorf("envelope: effective bandwidth needs s > 0, got %g", s)
	}
	n := len(ms.Rates)
	// Work with the scaled matrix P_{ij}·e^{s(r_j − peak)} to avoid
	// overflow; its spectral radius is ρ·e^{−s·peak}.
	peak := ms.PeakRate()
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			m[i][j] = ms.Trans[i][j] * math.Exp(s*(ms.Rates[j]-peak))
		}
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	lambda := 0.0
	next := make([]float64, n)
	for iter := 0; iter < 200000; iter++ {
		norm := 0.0
		for i := 0; i < n; i++ {
			next[i] = 0
			for j := 0; j < n; j++ {
				next[i] += m[i][j] * v[j]
			}
			norm += next[i]
		}
		if norm == 0 {
			return 0, errors.New("envelope: degenerate chain in effective bandwidth")
		}
		prev := lambda
		lambda = norm / floatSum(v)
		for i := range v {
			v[i] = next[i] / norm * float64(n)
		}
		if iter > 10 && math.Abs(lambda-prev) < 1e-14*lambda {
			break
		}
	}
	return peak + math.Log(lambda)/s, nil
}

// TwoState converts a two-state MMOO into the general representation, for
// cross-checking the closed-form effective bandwidth.
func (m MMOO) TwoState() MarkovSource {
	return MarkovSource{
		Rates: []float64{0, m.Peak},
		Trans: [][]float64{
			{m.P11, 1 - m.P11},
			{1 - m.P22, m.P22},
		},
	}
}

func floatSum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// EBBAggregate returns the EBB characterization of n statistically
// independent copies of the source at decay parameter s — the general-
// Markov counterpart of MMOO.EBBAggregate, letting the multi-node analysis
// run unchanged on richer traffic models.
func (ms MarkovSource) EBBAggregate(n, s float64) (EBB, error) {
	if n < 0 {
		return EBB{}, fmt.Errorf("envelope: aggregate size must be >= 0, got %g", n)
	}
	eb, err := ms.EffectiveBandwidth(s)
	if err != nil {
		return EBB{}, err
	}
	return EBB{M: 1, Rho: n * eb, Alpha: s}, nil
}
