package envelope_test

import (
	"fmt"

	"deltasched/internal/envelope"
)

// ExampleMMOO_EffectiveBandwidth evaluates the paper's traffic model: the
// effective bandwidth interpolates between mean and peak rate as the decay
// parameter grows.
func ExampleMMOO_EffectiveBandwidth() {
	src := envelope.PaperSource()
	for _, s := range []float64{0.001, 1, 1000} {
		eb, err := src.EffectiveBandwidth(s)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("eb(%g) = %.3f\n", s, eb)
	}
	// Output:
	// eb(0.001) = 0.150
	// eb(1) = 1.395
	// eb(1000) = 1.500
}

// ExampleMerge combines bounding functions exactly (the paper's Eq. 33):
// N identical exponential bounds merge to (N·M, α/N).
func ExampleMerge() {
	b := envelope.ExpBound{M: 3, Alpha: 0.8}
	merged, err := envelope.Merge(b, b, b, b)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("M = %.0f, alpha = %.1f\n", merged.M, merged.Alpha)
	// Output:
	// M = 12, alpha = 0.2
}

// ExampleEBB_SamplePath turns an increment bound into the discrete-time
// sample-path envelope the end-to-end analysis consumes.
func ExampleEBB_SamplePath() {
	e := envelope.EBB{M: 1, Rho: 10, Alpha: 0.5}
	rate, bound, err := e.SamplePath(2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("G(t) = %.0f·t with M = %.2f\n", rate, bound.M)
	// Output:
	// G(t) = 12·t with M = 1.58
}
