// Package envelope provides the traffic characterizations of the paper's
// Section II-A: deterministic sample-path envelopes, statistical envelopes
// with exponential bounding functions, the EBB (Exponentially Bounded
// Burstiness) traffic model, and Markov-modulated on-off sources with
// their effective bandwidth.
//
// Throughout, time is measured in slots (the paper's discrete-time unit,
// 1 ms in the numerical examples) and data in the caller's unit (kilobits
// in the examples).
package envelope

import (
	"errors"
	"fmt"
	"math"

	"deltasched/internal/minplus"
)

// Statistical is a statistical sample-path envelope in the sense of the
// paper's Eq. (2): for all t, σ >= 0,
//
//	P( sup_{0<=s<=t} { A(s,t) − G(t−s) } > σ ) <= Eps(σ).
//
// A deterministic envelope is the special case Eps ≡ 0 (σ > 0).
type Statistical struct {
	G   minplus.Curve
	Eps func(sigma float64) float64
}

// ExpBound is the exponential bounding function ε(σ) = M·e^{−α·σ}.
// Bounding functions are probabilities, so callers should clamp At() to 1
// when reporting; the raw value is kept because intermediate bounds
// legitimately exceed 1 during optimization.
type ExpBound struct {
	M     float64 // prefactor, M >= 0
	Alpha float64 // decay rate, α > 0
}

// ErrBadBound indicates non-positive decay or negative prefactor.
var ErrBadBound = errors.New("envelope: bound needs M >= 0 and Alpha > 0")

// Validate checks the bound's parameters.
func (b ExpBound) Validate() error {
	if b.M < 0 || b.Alpha <= 0 || math.IsNaN(b.M) || math.IsNaN(b.Alpha) {
		return fmt.Errorf("%w (M=%g, Alpha=%g)", ErrBadBound, b.M, b.Alpha)
	}
	return nil
}

// At evaluates ε(σ) = M·e^{−α·σ}.
func (b ExpBound) At(sigma float64) float64 {
	return b.M * math.Exp(-b.Alpha*sigma)
}

// SigmaFor returns the σ at which the bound equals the target violation
// probability eps: σ = ln(M/eps)/α. It returns 0 when the bound is already
// below eps at σ=0.
func (b ExpBound) SigmaFor(eps float64) float64 {
	if eps <= 0 {
		return math.Inf(1)
	}
	if b.M <= eps {
		return 0
	}
	return math.Log(b.M/eps) / b.Alpha
}

// Merge computes the exact infimum
//
//	inf_{σ_1+...+σ_N = σ} Σ_j M_j e^{−α_j σ_j}
//	    = e^{−σ/w} · Π_j (M_j α_j w)^{1/(α_j w)},   w = Σ_j 1/α_j,
//
// as a single exponential bound (the paper's Eq. (33); the closed form is
// the Lagrange solution, verified against brute force in the tests). This
// is the workhorse for combining per-node and per-flow bounding functions.
func Merge(bounds ...ExpBound) (ExpBound, error) {
	if len(bounds) == 0 {
		return ExpBound{}, errors.New("envelope: Merge needs at least one bound")
	}
	w := 0.0
	for _, b := range bounds {
		if err := b.Validate(); err != nil {
			return ExpBound{}, err
		}
		if b.M == 0 {
			// A zero term is slack: it contributes nothing to the sum and
			// absorbs no σ, so skip it.
			continue
		}
		w += 1 / b.Alpha
	}
	if w == 0 {
		return ExpBound{M: 0, Alpha: bounds[0].Alpha}, nil
	}
	logM := 0.0
	for _, b := range bounds {
		if b.M == 0 {
			continue
		}
		logM += math.Log(b.M*b.Alpha*w) / (b.Alpha * w)
	}
	return ExpBound{M: math.Exp(logM), Alpha: 1 / w}, nil
}

// EBB describes an Exponentially Bounded Burstiness arrival process
// (paper Eq. (27), after Yaron & Sidi): for all s <= t and σ >= 0,
//
//	P( A(s,t) > Rho·(t−s) + σ ) <= M·e^{−Alpha·σ}.
//
// M >= 1 is the prefactor, Rho the long-term rate bound, Alpha the decay.
type EBB struct {
	M     float64
	Rho   float64
	Alpha float64
}

// Validate checks the EBB parameters.
func (e EBB) Validate() error {
	if e.M < 1 || e.Rho < 0 || e.Alpha <= 0 ||
		math.IsNaN(e.M) || math.IsNaN(e.Rho) || math.IsNaN(e.Alpha) {
		return fmt.Errorf("envelope: invalid EBB (M=%g, Rho=%g, Alpha=%g); need M>=1, Rho>=0, Alpha>0",
			e.M, e.Rho, e.Alpha)
	}
	return nil
}

// Bound returns the increment bounding function M·e^{−α·σ}.
func (e EBB) Bound() ExpBound { return ExpBound{M: e.M, Alpha: e.Alpha} }

// SamplePath converts the increment bound into a discrete-time statistical
// sample-path envelope (paper Section IV): for any γ > 0, the envelope
// G(t) = (Rho+γ)·t has bounding function
//
//	ε(σ) = M·e^{−α·σ} / (1 − e^{−α·γ}),
//
// obtained with the union bound over the slots of the interval. The rate
// give-up γ buys summability of the per-slot violation probabilities.
func (e EBB) SamplePath(gamma float64) (rate float64, bound ExpBound, err error) {
	if err := e.Validate(); err != nil {
		return 0, ExpBound{}, err
	}
	if gamma <= 0 {
		return 0, ExpBound{}, fmt.Errorf("envelope: SamplePath needs gamma > 0, got %g", gamma)
	}
	den := 1 - math.Exp(-e.Alpha*gamma)
	return e.Rho + gamma, ExpBound{M: e.M / den, Alpha: e.Alpha}, nil
}

// SamplePathEnvelope packages SamplePath as a Statistical envelope.
func (e EBB) SamplePathEnvelope(gamma float64) (Statistical, error) {
	rate, bound, err := e.SamplePath(gamma)
	if err != nil {
		return Statistical{}, err
	}
	return Statistical{
		G:   minplus.ConstantRate(rate),
		Eps: bound.At,
	}, nil
}

// SumEBB aggregates independent-or-not EBB flows: rates add and the
// bounding functions combine through Merge (no independence is assumed,
// matching the paper's multiplexing model).
func SumEBB(flows ...EBB) (EBB, error) {
	if len(flows) == 0 {
		return EBB{}, errors.New("envelope: SumEBB needs at least one flow")
	}
	rho := 0.0
	bounds := make([]ExpBound, 0, len(flows))
	for _, f := range flows {
		if err := f.Validate(); err != nil {
			return EBB{}, err
		}
		rho += f.Rho
		bounds = append(bounds, f.Bound())
	}
	b, err := Merge(bounds...)
	if err != nil {
		return EBB{}, err
	}
	if b.M < 1 {
		b.M = 1 // an EBB prefactor below 1 is vacuous at σ=0; keep the model well-formed
	}
	return EBB{M: b.M, Rho: rho, Alpha: b.Alpha}, nil
}

// Deterministic returns the EBB representation of a leaky bucket
// E(t) = Rho·t + B: letting M = e^{B·α} and α → ∞ recovers the bucket
// (paper Section IV, case γ=0). The returned EBB uses the given finite α.
func Deterministic(rho, burst, alpha float64) EBB {
	return EBB{M: math.Exp(burst * alpha), Rho: rho, Alpha: alpha}
}

// FitEBB estimates, for a fixed decay α, the smallest (M, ρ) such that the
// EBB bound P(A(s,t) > ρ(t−s)+σ) <= M·e^{−ασ} holds empirically on the
// given per-slot arrival trace for every window length up to maxWindow:
// ρ is taken as the worst observed rate over long windows (plus the slack
// the caller wants to add afterwards), and M as the smallest prefactor
// covering the empirical exceedance frequencies at all (window, σ) pairs
// probed. The fit is a measurement tool (calibrating models to traces);
// the returned parameters make the bound hold on the trace, not in
// distribution.
func FitEBB(trace []float64, alpha float64, maxWindow int) (EBB, error) {
	if len(trace) < 2 {
		return EBB{}, errors.New("envelope: FitEBB needs at least 2 slots")
	}
	if alpha <= 0 || math.IsNaN(alpha) {
		return EBB{}, fmt.Errorf("envelope: FitEBB needs alpha > 0, got %g", alpha)
	}
	if maxWindow < 1 || maxWindow > len(trace) {
		maxWindow = len(trace)
	}
	cum := make([]float64, len(trace)+1)
	for i, x := range trace {
		if x < 0 || math.IsNaN(x) {
			return EBB{}, fmt.Errorf("envelope: trace slot %d invalid: %g", i, x)
		}
		cum[i+1] = cum[i] + x
	}
	mean := cum[len(trace)] / float64(len(trace))

	// ρ: the long-window mean rate (EBB needs ρ at least the mean rate for
	// the exceedance probabilities to decay).
	rho := mean

	// M: for a grid of windows and thresholds, the empirical exceedance
	// frequency of ρ·n + σ must be <= M·e^{−ασ}.
	m := 1.0
	for n := 1; n <= maxWindow; n = growWindow(n) {
		// Collect window sums.
		count := len(trace) - n + 1
		if count < 10 {
			break
		}
		for _, sigmaFrac := range []float64{0.25, 0.5, 1, 2, 4} {
			// Scale thresholds to the window's natural deviation.
			sigma := sigmaFrac * (1 + math.Sqrt(float64(n))*mean)
			exceed := 0
			for s := 0; s < count; s++ {
				if cum[s+n]-cum[s] > rho*float64(n)+sigma {
					exceed++
				}
			}
			freq := float64(exceed) / float64(count)
			if need := freq * math.Exp(alpha*sigma); need > m {
				m = need
			}
		}
	}
	return EBB{M: m, Rho: rho, Alpha: alpha}, nil
}

func growWindow(n int) int {
	next := n * 3 / 2
	if next == n {
		next = n + 1
	}
	return next
}
