package envelope

import (
	"testing"
)

func TestPaperSourceStatistics(t *testing.T) {
	m := PaperSource()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper: peak 1.5 kbit/ms = 1.5 Mbps, average ≈ 0.15 Mbps.
	almost(t, m.PeakRate(), 1.5, 0, "peak")
	almost(t, m.OnProbability(), 0.011/0.111, 1e-12, "P(ON) = p12/(p12+p21)")
	almost(t, m.MeanRate(), 1.5*0.011/0.111, 1e-12, "mean rate ≈ 0.1486 kbit/ms")
}

func TestMMOOValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       MMOO
		wantErr bool
	}{
		{"paper", PaperSource(), false},
		{"zero peak", MMOO{Peak: 0, P11: 0.9, P22: 0.9}, true},
		{"prob above 1", MMOO{Peak: 1, P11: 1.2, P22: 0.9}, true},
		{"negatively correlated", MMOO{Peak: 1, P11: 0.2, P22: 0.2}, true}, // p12+p21 = 1.6 > 1
		{"iid boundary", MMOO{Peak: 1, P11: 0.5, P22: 0.5}, false},         // p12+p21 = 1
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(); (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEffectiveBandwidthLimits(t *testing.T) {
	m := PaperSource()
	// eb(s) is sandwiched between mean and peak rate and is non-decreasing.
	prev := 0.0
	for i, s := range []float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10, 100} {
		eb, err := m.EffectiveBandwidth(s)
		if err != nil {
			t.Fatal(err)
		}
		if eb < m.MeanRate()-1e-9 || eb > m.PeakRate()+1e-9 {
			t.Fatalf("eb(%g) = %g outside [mean=%g, peak=%g]", s, eb, m.MeanRate(), m.PeakRate())
		}
		if i > 0 && eb < prev-1e-12 {
			t.Fatalf("eb not monotone at s=%g: %g < %g", s, eb, prev)
		}
		prev = eb
	}
	// Limits.
	ebSmall, _ := m.EffectiveBandwidth(1e-6)
	almost(t, ebSmall, m.MeanRate(), 1e-3, "eb(0+) → mean rate")
	ebLarge, _ := m.EffectiveBandwidth(1e4)
	almost(t, ebLarge, m.PeakRate(), 1e-2, "eb(∞) → peak rate")

	if _, err := m.EffectiveBandwidth(0); err == nil {
		t.Error("s=0 must be rejected")
	}
}

func TestEffectiveBandwidthMatchesGeneralMarkov(t *testing.T) {
	m := PaperSource()
	gen := m.TwoState()
	for _, s := range []float64{0.01, 0.1, 0.5, 1, 3} {
		closed, err := m.EffectiveBandwidth(s)
		if err != nil {
			t.Fatal(err)
		}
		power, err := gen.EffectiveBandwidth(s)
		if err != nil {
			t.Fatal(err)
		}
		almost(t, power, closed, 1e-6, "closed form vs spectral radius")
	}
}

func TestEBBAggregate(t *testing.T) {
	m := PaperSource()
	e, err := m.EBBAggregate(100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	eb, _ := m.EffectiveBandwidth(0.5)
	almost(t, e.Rho, 100*eb, 1e-9, "aggregate rate n·eb(s)")
	almost(t, e.M, 1, 0, "prefactor 1")
	almost(t, e.Alpha, 0.5, 0, "alpha = s")

	if _, err := m.EBBAggregate(-1, 0.5); err == nil {
		t.Error("negative aggregate size must be rejected")
	}
}

func TestFlowsForUtilization(t *testing.T) {
	m := PaperSource()
	n, err := m.FlowsForUtilization(0.15, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The paper equates N=100 flows with U=15% on a 100 Mbps link using the
	// rounded per-flow average of 0.15 Mbps; the exact mean gives ≈100.9.
	almost(t, n, 0.15*100/m.MeanRate(), 1e-9, "flow count")
	if n < 100 || n > 102 {
		t.Fatalf("flow count %g implausible for the paper's setup", n)
	}
	if _, err := m.FlowsForUtilization(0.5, 0); err == nil {
		t.Error("zero capacity must be rejected")
	}
}

func TestStationaryGeneralMarkov(t *testing.T) {
	gen := PaperSource().TwoState()
	pi, err := gen.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, pi[1], 0.011/0.111, 1e-9, "stationary ON probability")
	almost(t, pi[0]+pi[1], 1, 1e-9, "distribution sums to 1")

	mean, err := gen.MeanRate()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, mean, PaperSource().MeanRate(), 1e-9, "mean rate agreement")
}

func TestGeneralMarkovValidation(t *testing.T) {
	bad := MarkovSource{
		Rates: []float64{0, 1},
		Trans: [][]float64{{0.5, 0.4}, {0.1, 0.9}}, // first row sums to 0.9
	}
	if err := bad.Validate(); err == nil {
		t.Error("non-stochastic matrix must be rejected")
	}
	if _, err := bad.EffectiveBandwidth(1); err == nil {
		t.Error("effective bandwidth must propagate validation errors")
	}
}

func TestThreeStateMarkovBandwidthSandwich(t *testing.T) {
	// A three-level (video-like) source: idle, baseline, burst.
	src := MarkovSource{
		Rates: []float64{0, 1, 4},
		Trans: [][]float64{
			{0.90, 0.09, 0.01},
			{0.05, 0.90, 0.05},
			{0.10, 0.30, 0.60},
		},
	}
	mean, err := src.MeanRate()
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i, s := range []float64{0.01, 0.1, 1, 5} {
		eb, err := src.EffectiveBandwidth(s)
		if err != nil {
			t.Fatal(err)
		}
		if eb < mean-1e-9 || eb > src.PeakRate()+1e-9 {
			t.Fatalf("eb(%g)=%g outside [%g, %g]", s, eb, mean, src.PeakRate())
		}
		if i > 0 && eb < prev-1e-9 {
			t.Fatalf("eb not monotone at s=%g", s)
		}
		prev = eb
	}
}

func TestGeneralMarkovEBBAggregate(t *testing.T) {
	src := PaperSource().TwoState()
	e, err := src.EBBAggregate(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PaperSource().EBBAggregate(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d := e.Rho - want.Rho; d > 1e-6 || d < -1e-6 {
		t.Fatalf("general vs closed-form aggregate rate: %g vs %g", e.Rho, want.Rho)
	}
	if _, err := src.EBBAggregate(-1, 0.5); err == nil {
		t.Error("negative population must be rejected")
	}
	bad := MarkovSource{Rates: []float64{1}, Trans: [][]float64{{0.5}}}
	if _, err := bad.EBBAggregate(1, 0.5); err == nil {
		t.Error("invalid chain must be rejected")
	}
}
