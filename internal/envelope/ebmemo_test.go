package envelope

import (
	"math"
	"testing"
)

// TestEBMemoMatchesDirect checks that the cached pricer returns exactly
// the values of the uncached methods, including across cache hits,
// misses, and revisited decays.
func TestEBMemoMatchesDirect(t *testing.T) {
	m := PaperSource()
	memo, err := NewEBMemo(m)
	if err != nil {
		t.Fatal(err)
	}
	if memo.Source() != m {
		t.Fatalf("Source() = %+v, want %+v", memo.Source(), m)
	}
	// Repeats exercise the one-entry cache; the jumps evict it.
	for _, s := range []float64{0.01, 0.01, 0.5, 0.5, 0.01, 3, 0.5} {
		want, err := m.EffectiveBandwidth(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := memo.EffectiveBandwidth(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("EffectiveBandwidth(%g) = %v via memo, want %v", s, got, want)
		}
		for _, n := range []float64{0, 30, 60.5} {
			wantAgg, err := m.EBBAggregate(n, s)
			if err != nil {
				t.Fatal(err)
			}
			gotAgg, err := memo.EBBAggregate(n, s)
			if err != nil {
				t.Fatal(err)
			}
			if gotAgg != wantAgg {
				t.Errorf("EBBAggregate(%g, %g) = %+v via memo, want %+v", n, s, gotAgg, wantAgg)
			}
		}
	}
}

func TestEBMemoValidation(t *testing.T) {
	if _, err := NewEBMemo(MMOO{Peak: -1, P11: 0.9, P22: 0.9}); err == nil {
		t.Error("invalid source must be rejected at construction")
	}
	memo, err := NewEBMemo(PaperSource())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := memo.EBBAggregate(-1, 0.1); err == nil {
		t.Error("negative aggregate size must be rejected")
	}
	if _, err := memo.EffectiveBandwidth(0); err == nil {
		t.Error("s = 0 must be rejected")
	}
	if _, err := memo.EffectiveBandwidth(math.NaN()); err == nil {
		t.Error("NaN s must be rejected")
	}
}
