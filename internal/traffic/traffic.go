// Package traffic provides discrete-time traffic sources for the network
// simulator: the paper's Markov-modulated on-off flows, constant bit rate
// sources, aggregates, and greedy (envelope-tracing) adversaries used by
// the Theorem 2 tightness experiments.
//
// A source emits a non-negative amount of data at each slot; cumulative
// emissions over [0, t) form the arrival process A(t) of the paper.
package traffic

import (
	"errors"
	"fmt"

	"deltasched/internal/envelope"
	"deltasched/internal/minplus"
	"deltasched/internal/randx"
)

// inv63 is the exact power-of-two reciprocal 2⁻⁶³ used by the
// hand-inlined uniform draw in nextBank — the same scaling constant
// randx.(*Rand).Float64 multiplies by.
const inv63 = 1.0 / (1 << 63)

// Source generates per-slot arrivals.
type Source interface {
	// Next returns the amount of data arriving in the current slot and
	// advances the source to the next slot.
	Next() float64
}

// BlockSource is the batch seam of the simulator's slot loop: NextBlock
// fills dst with the next len(dst) slots' arrivals, producing exactly the
// values — and consuming any underlying randomness in exactly the order —
// that len(dst) successive Next calls would. The contract is bit-identity,
// not merely equality in distribution, because seeded sample paths are
// pinned by golden fixtures.
//
// Callers must not assume more than that: when several sources share one
// RNG (the simulator's default wiring), draining a whole block from one
// source before the next reorders the shared stream, so such callers must
// interleave per-slot (see sim.Tandem's IndependentSources flag).
type BlockSource interface {
	Source
	// NextBlock is equivalent to: for i := range dst { dst[i] = s.Next() }.
	NextBlock(dst []float64)
}

// FillBlock drains len(dst) slots from src, using NextBlock when
// implemented and falling back to per-slot Next calls otherwise.
func FillBlock(src Source, dst []float64) {
	if bs, ok := src.(BlockSource); ok {
		bs.NextBlock(dst)
		return
	}
	for i := range dst {
		dst[i] = src.Next()
	}
}

// MMOO is a two-state Markov-modulated on-off source (paper Section V).
// The initial state is drawn from the stationary distribution so that
// finite simulations match the analysis without a warm-up phase.
type MMOO struct {
	model envelope.MMOO
	rng   randx.Uniform
	fast  *randx.Rand // non-nil when rng is the concrete devirtualized RNG
	on    bool
}

// NewMMOO validates the chain and seeds the state from its stationary
// distribution using the provided RNG. When rng is a *randx.Rand the
// source runs devirtualized (no interface dispatch per draw) on a
// bit-identical stream.
func NewMMOO(m envelope.MMOO, rng randx.Uniform) (*MMOO, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("traffic: NewMMOO needs a uniform RNG")
	}
	fast, _ := rng.(*randx.Rand)
	return &MMOO{
		model: m,
		rng:   rng,
		fast:  fast,
		on:    rng.Float64() < m.OnProbability(),
	}, nil
}

// Next implements Source.
func (s *MMOO) Next() float64 {
	if s.fast != nil {
		return s.nextFast(s.fast)
	}
	out := 0.0
	if s.on {
		out = s.model.Peak
	}
	// Transition for the next slot.
	if s.on {
		s.on = s.rng.Float64() < s.model.P22
	} else {
		s.on = s.rng.Float64() >= s.model.P11
	}
	return out
}

// nextFast is Next on the concrete RNG: one branch merge apart (emit and
// transition share the state test), the float operations and the single
// Float64 draw per slot are identical, so the sample path is too.
func (s *MMOO) nextFast(r *randx.Rand) float64 {
	if s.on {
		s.on = r.Float64() < s.model.P22
		return s.model.Peak
	}
	s.on = r.Float64() >= s.model.P11
	return 0
}

// NextBlock implements BlockSource. On the concrete RNG the fill walks
// geometric state-runs — emitting Peak (or 0) while drawing the one
// transition uniform per slot — which keeps the stream identical while
// letting the branch predictor see the run structure.
func (s *MMOO) NextBlock(dst []float64) {
	r := s.fast
	if r == nil {
		for i := range dst {
			dst[i] = s.Next()
		}
		return
	}
	m := &s.model
	on := s.on
	for i := 0; i < len(dst); {
		if on {
			for i < len(dst) && on {
				dst[i] = m.Peak
				on = r.Float64() < m.P22
				i++
			}
		} else {
			for i < len(dst) && !on {
				dst[i] = 0
				on = r.Float64() >= m.P11
				i++
			}
		}
	}
	s.on = on
}

// CBR is a constant bit rate source.
type CBR struct {
	Rate float64
}

// Next implements Source.
func (s CBR) Next() float64 { return s.Rate }

// NextBlock implements BlockSource.
func (s CBR) NextBlock(dst []float64) {
	for i := range dst {
		dst[i] = s.Rate
	}
}

// Aggregate sums a set of sources (statistical multiplexing of flows into
// the through- or cross-traffic aggregates of the paper's Fig. 1).
type Aggregate struct {
	sources []Source
	// mm is the devirtualized member bank, non-nil when every member is
	// an *MMOO on the concrete fast RNG: the common simulator wiring,
	// where the per-slot sum can skip both the Source dispatch and the
	// Uniform dispatch entirely.
	mm []*MMOO
	// uniform marks a bank whose members all share one RNG and one model
	// (NewMMOOAggregate's wiring): the per-slot sum then keeps the RNG
	// pointer and the three model constants in registers, and steps the
	// packed `on` flags instead of chasing a pointer per member — four
	// cache lines of mutable state for the paper's 210 flows. The member
	// structs are not advanced on this path, so a source handed to
	// NewAggregate must afterwards be driven only through the aggregate.
	uniform bool
	bankR   *randx.Rand
	bankM   envelope.MMOO
	on      []bool
}

// NewAggregate bundles the given sources.
func NewAggregate(sources ...Source) *Aggregate {
	a := &Aggregate{sources: sources}
	if len(sources) > 0 {
		mm := make([]*MMOO, len(sources))
		for i, s := range sources {
			m, ok := s.(*MMOO)
			if !ok || m.fast == nil {
				mm = nil
				break
			}
			mm[i] = m
		}
		a.mm = mm
		if mm != nil {
			a.uniform = true
			a.bankR = mm[0].fast
			a.bankM = mm[0].model
			for _, m := range mm {
				if m.fast != a.bankR || m.model != a.bankM {
					a.uniform = false
					break
				}
			}
			if a.uniform {
				a.on = make([]bool, len(mm))
				for i, m := range mm {
					a.on[i] = m.on
				}
			}
		}
	}
	return a
}

// NewMMOOAggregate creates n iid MMOO flows sharing one RNG.
func NewMMOOAggregate(m envelope.MMOO, n int, rng randx.Uniform) (*Aggregate, error) {
	if n < 0 {
		return nil, fmt.Errorf("traffic: aggregate size must be >= 0, got %d", n)
	}
	srcs := make([]Source, 0, n)
	for i := 0; i < n; i++ {
		s, err := NewMMOO(m, rng)
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, s)
	}
	return NewAggregate(srcs...), nil
}

// Next implements Source.
func (a *Aggregate) Next() float64 {
	if a.mm != nil {
		return a.nextBank()
	}
	total := 0.0
	for _, s := range a.sources {
		total += s.Next()
	}
	return total
}

// nextBank sums the all-MMOO member bank with concrete calls only. The
// members' draws happen in the same order as the generic loop, and
// skipping the += for OFF members does not change the float sum (adding
// +0.0 is an identity on every non-negative accumulator). On a uniform
// bank the shared RNG and model constants are hoisted out of the loop —
// the same comparisons against the same values, one member flag load
// per flow.
func (a *Aggregate) nextBank() float64 {
	total := 0.0
	if a.uniform {
		r := a.bankR
		peak, p22, p11 := a.bankM.Peak, a.bankM.P22, a.bankM.P11
		on := a.on
		for i, o := range on {
			// Hand-inlined randx.(*Rand).Float64: the redraw loop keeps
			// Float64 itself over the compiler's inline budget, and at one
			// draw per flow per slot the call is measurable. float64(Int63())
			// times the exact reciprocal of 2⁶³, redrawn on rounding to 1.0,
			// is the Go-1 stream bit for bit; TestFastRNGStreamParity pins
			// this loop against the interface path every run. Each flow
			// consumes exactly one draw on either branch, so hoisting the
			// draw above the state test preserves the stream.
			f := float64(r.Int63()) * inv63
			for f == 1 {
				f = float64(r.Int63()) * inv63
			}
			if o {
				total += peak
				on[i] = f < p22
			} else {
				on[i] = f >= p11
			}
		}
		return total
	}
	for _, m := range a.mm {
		r := m.fast
		if m.on {
			total += m.model.Peak
			m.on = r.Float64() < m.model.P22
		} else {
			m.on = r.Float64() >= m.model.P11
		}
	}
	return total
}

// NextBlock implements BlockSource. The fill stays slot-major across
// members: the members share one RNG in the usual wiring, so a
// member-major fill would reorder the shared stream.
func (a *Aggregate) NextBlock(dst []float64) {
	if a.mm != nil {
		for i := range dst {
			dst[i] = a.nextBank()
		}
		return
	}
	for i := range dst {
		dst[i] = a.Next()
	}
}

// Size returns the number of bundled flows.
func (a *Aggregate) Size() int { return len(a.sources) }

// CountAggregate simulates n iid two-state MMOO flows as a single Markov
// chain on the number of currently-ON flows. Because the flows are iid,
// the ON-count k is a sufficient statistic for the aggregate: each slot
// emits k·Peak and the count evolves as
//
//	k' = Bin(k, P22) + Bin(n−k, 1−P11),
//
// i.e. the ON flows that stay ON plus the OFF flows that switch ON, two
// independent binomial draws. The per-slot arrival process is equal in
// distribution to NewMMOOAggregate's — exactly, not asymptotically — but
// costs O(1) RNG draws per slot instead of O(n), which dominates the
// simulator's slot loop at the paper's flow counts (210 flows in the
// Fig. 1 benchmark topology).
//
// The RNG *stream* necessarily differs from the per-source aggregate
// (two binomial draws consume different uniforms than n Bernoulli draws),
// so seeded runs are not sample-path-identical across the two modes; use
// NewMMOOAggregate when bit-exact legacy streams matter and this type
// when throughput does. Statistical parity — mean rate, per-slot
// variance, lag-1 autocovariance, stationary ON-count distribution — is
// pinned by the tests.
type CountAggregate struct {
	model envelope.MMOO
	rng   randx.Uniform
	fast  *randx.Rand // non-nil when rng is the concrete devirtualized RNG
	n     int
	k     int // flows currently ON
	// Fixed-p samplers with the (1−p)^n tables precomputed up to n: the
	// slot loop draws without touching exp/log (the draws stay
	// bit-identical to randx.Binomial).
	stay *randx.BinomialSampler // Bin(k, P22): ON flows that remain ON
	join *randx.BinomialSampler // Bin(n−k, 1−P11): OFF flows switching ON
}

// NewMMOOCountAggregate validates the chain and draws the initial ON
// count from the stationary distribution Bin(n, OnProbability), matching
// NewMMOOAggregate's warm start.
func NewMMOOCountAggregate(m envelope.MMOO, n int, rng randx.Uniform) (*CountAggregate, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("traffic: aggregate size must be >= 0, got %d", n)
	}
	if rng == nil {
		return nil, errors.New("traffic: NewMMOOCountAggregate needs a uniform RNG")
	}
	fast, _ := rng.(*randx.Rand)
	return &CountAggregate{
		model: m,
		rng:   rng,
		fast:  fast,
		n:     n,
		k:     randx.Binomial(rng, n, m.OnProbability()),
		stay:  randx.NewBinomialSampler(n, m.P22),
		join:  randx.NewBinomialSampler(n, 1-m.P11),
	}, nil
}

// Next implements Source.
func (a *CountAggregate) Next() float64 {
	out := float64(a.k) * a.model.Peak
	var stay, join int
	if a.fast != nil {
		stay = a.stay.SampleFast(a.fast, a.k)
		join = a.join.SampleFast(a.fast, a.n-a.k)
	} else {
		stay = a.stay.Sample(a.rng, a.k)
		join = a.join.Sample(a.rng, a.n-a.k)
	}
	a.k = stay + join
	return out
}

// NextBlock implements BlockSource.
func (a *CountAggregate) NextBlock(dst []float64) {
	if a.fast != nil {
		r := a.fast
		for i := range dst {
			dst[i] = float64(a.k) * a.model.Peak
			stay := a.stay.SampleFast(r, a.k)
			join := a.join.SampleFast(r, a.n-a.k)
			a.k = stay + join
		}
		return
	}
	for i := range dst {
		dst[i] = a.Next()
	}
}

// Size returns the number of modeled flows.
func (a *CountAggregate) Size() int { return a.n }

// OnCount returns the number of flows currently ON — the chain state,
// exposed for the parity tests.
func (a *CountAggregate) OnCount() int { return a.k }

// Greedy traces a deterministic envelope exactly: cumulative emissions
// after t slots equal E(t). It realizes the adversarial arrival pattern of
// the Theorem 2 necessity proof ("each flow k has arrivals such that
// A_k(t) = E_k(t)").
type Greedy struct {
	env  minplus.Curve
	slot int
	sent float64
}

// NewGreedy validates the envelope (non-decreasing, finite) and returns a
// greedy tracer.
func NewGreedy(env minplus.Curve) (*Greedy, error) {
	if !env.IsFinite() {
		return nil, errors.New("traffic: greedy source needs a finite envelope")
	}
	if !env.NonDecreasing() {
		return nil, errors.New("traffic: greedy source needs a non-decreasing envelope")
	}
	return &Greedy{env: env}, nil
}

// Next implements Source: the slot-0 emission is E(1) (the initial burst
// plus one slot's worth), and thereafter E(t+1) − E(t).
func (g *Greedy) Next() float64 {
	g.slot++
	target := g.env.Eval(float64(g.slot))
	out := target - g.sent
	if out < 0 {
		out = 0
	}
	g.sent += out
	return out
}

// NextBlock implements BlockSource (the envelope walk is deterministic, so
// the per-slot loop is already exact).
func (g *Greedy) NextBlock(dst []float64) {
	for i := range dst {
		dst[i] = g.Next()
	}
}

// Delayed wraps a source, holding it silent for the first `start` slots —
// used to inject a tagged arrival at a chosen time t*.
type Delayed struct {
	Start int
	Src   Source

	slot int
}

// Next implements Source.
func (d *Delayed) Next() float64 {
	if d.slot < d.Start {
		d.slot++
		return 0
	}
	d.slot++
	return d.Src.Next()
}

// NextBlock implements BlockSource: the silent prefix is bulk-zeroed and
// the remainder delegated to the wrapped source's block path.
func (d *Delayed) NextBlock(dst []float64) {
	i := 0
	for i < len(dst) && d.slot < d.Start {
		dst[i] = 0
		d.slot++
		i++
	}
	if i < len(dst) {
		d.slot += len(dst) - i
		FillBlock(d.Src, dst[i:])
	}
}

// Pulse emits a single burst of the given size at slot Start and nothing
// otherwise.
type Pulse struct {
	Start int
	Size  float64

	slot int
}

// Next implements Source.
func (p *Pulse) Next() float64 {
	s := p.slot
	p.slot++
	if s == p.Start {
		return p.Size
	}
	return 0
}

// NextBlock implements BlockSource.
func (p *Pulse) NextBlock(dst []float64) {
	for i := range dst {
		dst[i] = p.Next()
	}
}

// Trace replays a recorded per-slot arrival sequence; past the end it
// emits nothing. Useful for feeding measured traffic into the simulator
// or for crafting exact adversarial patterns in tests.
type Trace struct {
	Data []float64

	pos int
}

// Next implements Source.
func (t *Trace) Next() float64 {
	if t.pos >= len(t.Data) {
		return 0
	}
	v := t.Data[t.pos]
	t.pos++
	if v < 0 {
		return 0
	}
	return v
}

// NextBlock implements BlockSource: a clamped copy of the recorded window
// plus a zero tail past the end of the trace.
func (t *Trace) NextBlock(dst []float64) {
	n := copy(dst, t.Data[min(t.pos, len(t.Data)):])
	t.pos += n
	for i := 0; i < n; i++ {
		if dst[i] < 0 {
			dst[i] = 0
		}
	}
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
}

// PeriodicOnOff is a deterministic on-off source: Rate per slot for On
// slots, then silent for Off slots, repeating, starting at phase Phase
// into the cycle. It is the deterministic counterpart of the MMOO source
// (worst-case burstiness for a given mean when phase-aligned).
type PeriodicOnOff struct {
	Rate  float64
	On    int
	Off   int
	Phase int

	slot int
}

// Next implements Source.
func (p *PeriodicOnOff) Next() float64 {
	period := p.On + p.Off
	if period <= 0 || p.On <= 0 {
		return 0
	}
	pos := (p.slot + p.Phase) % period
	p.slot++
	if pos < p.On {
		return p.Rate
	}
	return 0
}

// NextBlock implements BlockSource.
func (p *PeriodicOnOff) NextBlock(dst []float64) {
	for i := range dst {
		dst[i] = p.Next()
	}
}
