// Package traffic provides discrete-time traffic sources for the network
// simulator: the paper's Markov-modulated on-off flows, constant bit rate
// sources, aggregates, and greedy (envelope-tracing) adversaries used by
// the Theorem 2 tightness experiments.
//
// A source emits a non-negative amount of data at each slot; cumulative
// emissions over [0, t) form the arrival process A(t) of the paper.
package traffic

import (
	"errors"
	"fmt"
	"math/rand"

	"deltasched/internal/envelope"
	"deltasched/internal/minplus"
	"deltasched/internal/randx"
)

// Source generates per-slot arrivals.
type Source interface {
	// Next returns the amount of data arriving in the current slot and
	// advances the source to the next slot.
	Next() float64
}

// MMOO is a two-state Markov-modulated on-off source (paper Section V).
// The initial state is drawn from the stationary distribution so that
// finite simulations match the analysis without a warm-up phase.
type MMOO struct {
	model envelope.MMOO
	rng   *rand.Rand
	on    bool
}

// NewMMOO validates the chain and seeds the state from its stationary
// distribution using the provided RNG.
func NewMMOO(m envelope.MMOO, rng *rand.Rand) (*MMOO, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("traffic: NewMMOO needs a *rand.Rand")
	}
	return &MMOO{
		model: m,
		rng:   rng,
		on:    rng.Float64() < m.OnProbability(),
	}, nil
}

// Next implements Source.
func (s *MMOO) Next() float64 {
	out := 0.0
	if s.on {
		out = s.model.Peak
	}
	// Transition for the next slot.
	if s.on {
		s.on = s.rng.Float64() < s.model.P22
	} else {
		s.on = s.rng.Float64() >= s.model.P11
	}
	return out
}

// CBR is a constant bit rate source.
type CBR struct {
	Rate float64
}

// Next implements Source.
func (s CBR) Next() float64 { return s.Rate }

// Aggregate sums a set of sources (statistical multiplexing of flows into
// the through- or cross-traffic aggregates of the paper's Fig. 1).
type Aggregate struct {
	sources []Source
}

// NewAggregate bundles the given sources.
func NewAggregate(sources ...Source) *Aggregate {
	return &Aggregate{sources: sources}
}

// NewMMOOAggregate creates n iid MMOO flows sharing one RNG.
func NewMMOOAggregate(m envelope.MMOO, n int, rng *rand.Rand) (*Aggregate, error) {
	if n < 0 {
		return nil, fmt.Errorf("traffic: aggregate size must be >= 0, got %d", n)
	}
	srcs := make([]Source, 0, n)
	for i := 0; i < n; i++ {
		s, err := NewMMOO(m, rng)
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, s)
	}
	return NewAggregate(srcs...), nil
}

// Next implements Source.
func (a *Aggregate) Next() float64 {
	total := 0.0
	for _, s := range a.sources {
		total += s.Next()
	}
	return total
}

// Size returns the number of bundled flows.
func (a *Aggregate) Size() int { return len(a.sources) }

// CountAggregate simulates n iid two-state MMOO flows as a single Markov
// chain on the number of currently-ON flows. Because the flows are iid,
// the ON-count k is a sufficient statistic for the aggregate: each slot
// emits k·Peak and the count evolves as
//
//	k' = Bin(k, P22) + Bin(n−k, 1−P11),
//
// i.e. the ON flows that stay ON plus the OFF flows that switch ON, two
// independent binomial draws. The per-slot arrival process is equal in
// distribution to NewMMOOAggregate's — exactly, not asymptotically — but
// costs O(1) RNG draws per slot instead of O(n), which dominates the
// simulator's slot loop at the paper's flow counts (210 flows in the
// Fig. 1 benchmark topology).
//
// The RNG *stream* necessarily differs from the per-source aggregate
// (two binomial draws consume different uniforms than n Bernoulli draws),
// so seeded runs are not sample-path-identical across the two modes; use
// NewMMOOAggregate when bit-exact legacy streams matter and this type
// when throughput does. Statistical parity — mean rate, per-slot
// variance, lag-1 autocovariance, stationary ON-count distribution — is
// pinned by the tests.
type CountAggregate struct {
	model envelope.MMOO
	rng   *rand.Rand
	n     int
	k     int // flows currently ON
	// Fixed-p samplers with the (1−p)^n tables precomputed up to n: the
	// slot loop draws without touching exp/log (the draws stay
	// bit-identical to randx.Binomial).
	stay *randx.BinomialSampler // Bin(k, P22): ON flows that remain ON
	join *randx.BinomialSampler // Bin(n−k, 1−P11): OFF flows switching ON
}

// NewMMOOCountAggregate validates the chain and draws the initial ON
// count from the stationary distribution Bin(n, OnProbability), matching
// NewMMOOAggregate's warm start.
func NewMMOOCountAggregate(m envelope.MMOO, n int, rng *rand.Rand) (*CountAggregate, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("traffic: aggregate size must be >= 0, got %d", n)
	}
	if rng == nil {
		return nil, errors.New("traffic: NewMMOOCountAggregate needs a *rand.Rand")
	}
	return &CountAggregate{
		model: m,
		rng:   rng,
		n:     n,
		k:     randx.Binomial(rng, n, m.OnProbability()),
		stay:  randx.NewBinomialSampler(n, m.P22),
		join:  randx.NewBinomialSampler(n, 1-m.P11),
	}, nil
}

// Next implements Source.
func (a *CountAggregate) Next() float64 {
	out := float64(a.k) * a.model.Peak
	stay := a.stay.Sample(a.rng, a.k)
	join := a.join.Sample(a.rng, a.n-a.k)
	a.k = stay + join
	return out
}

// Size returns the number of modeled flows.
func (a *CountAggregate) Size() int { return a.n }

// OnCount returns the number of flows currently ON — the chain state,
// exposed for the parity tests.
func (a *CountAggregate) OnCount() int { return a.k }

// Greedy traces a deterministic envelope exactly: cumulative emissions
// after t slots equal E(t). It realizes the adversarial arrival pattern of
// the Theorem 2 necessity proof ("each flow k has arrivals such that
// A_k(t) = E_k(t)").
type Greedy struct {
	env  minplus.Curve
	slot int
	sent float64
}

// NewGreedy validates the envelope (non-decreasing, finite) and returns a
// greedy tracer.
func NewGreedy(env minplus.Curve) (*Greedy, error) {
	if !env.IsFinite() {
		return nil, errors.New("traffic: greedy source needs a finite envelope")
	}
	if !env.NonDecreasing() {
		return nil, errors.New("traffic: greedy source needs a non-decreasing envelope")
	}
	return &Greedy{env: env}, nil
}

// Next implements Source: the slot-0 emission is E(1) (the initial burst
// plus one slot's worth), and thereafter E(t+1) − E(t).
func (g *Greedy) Next() float64 {
	g.slot++
	target := g.env.Eval(float64(g.slot))
	out := target - g.sent
	if out < 0 {
		out = 0
	}
	g.sent += out
	return out
}

// Delayed wraps a source, holding it silent for the first `start` slots —
// used to inject a tagged arrival at a chosen time t*.
type Delayed struct {
	Start int
	Src   Source

	slot int
}

// Next implements Source.
func (d *Delayed) Next() float64 {
	if d.slot < d.Start {
		d.slot++
		return 0
	}
	d.slot++
	return d.Src.Next()
}

// Pulse emits a single burst of the given size at slot Start and nothing
// otherwise.
type Pulse struct {
	Start int
	Size  float64

	slot int
}

// Next implements Source.
func (p *Pulse) Next() float64 {
	s := p.slot
	p.slot++
	if s == p.Start {
		return p.Size
	}
	return 0
}

// Trace replays a recorded per-slot arrival sequence; past the end it
// emits nothing. Useful for feeding measured traffic into the simulator
// or for crafting exact adversarial patterns in tests.
type Trace struct {
	Data []float64

	pos int
}

// Next implements Source.
func (t *Trace) Next() float64 {
	if t.pos >= len(t.Data) {
		return 0
	}
	v := t.Data[t.pos]
	t.pos++
	if v < 0 {
		return 0
	}
	return v
}

// PeriodicOnOff is a deterministic on-off source: Rate per slot for On
// slots, then silent for Off slots, repeating, starting at phase Phase
// into the cycle. It is the deterministic counterpart of the MMOO source
// (worst-case burstiness for a given mean when phase-aligned).
type PeriodicOnOff struct {
	Rate  float64
	On    int
	Off   int
	Phase int

	slot int
}

// Next implements Source.
func (p *PeriodicOnOff) Next() float64 {
	period := p.On + p.Off
	if period <= 0 || p.On <= 0 {
		return 0
	}
	pos := (p.slot + p.Phase) % period
	p.slot++
	if pos < p.On {
		return p.Rate
	}
	return 0
}
