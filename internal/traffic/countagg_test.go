package traffic

import (
	"math"
	"math/rand"
	"testing"

	"deltasched/internal/envelope"
)

// slotStats summarizes a per-slot emission sequence: mean, variance,
// lag-1 autocovariance, and the empirical ON-count histogram (emissions
// divided by the peak rate).
type slotStats struct {
	mean, variance, lag1 float64
	hist                 []float64 // P(k flows ON), k = 0..n
}

func collectStats(t *testing.T, src Source, n int, peak float64, slots int) slotStats {
	t.Helper()
	xs := make([]float64, slots)
	sum := 0.0
	hist := make([]float64, n+1)
	for i := range xs {
		xs[i] = src.Next()
		sum += xs[i]
		k := int(math.Round(xs[i] / peak))
		if k < 0 || k > n || math.Abs(xs[i]-float64(k)*peak) > 1e-9 {
			t.Fatalf("slot %d: emission %g is not a multiple of peak %g in [0, %d]", i, xs[i], peak, n)
		}
		hist[k]++
	}
	s := slotStats{mean: sum / float64(slots), hist: hist}
	for k := range hist {
		hist[k] /= float64(slots)
	}
	for i := range xs {
		d := xs[i] - s.mean
		s.variance += d * d
		if i+1 < len(xs) {
			s.lag1 += d * (xs[i+1] - s.mean)
		}
	}
	s.variance /= float64(slots)
	s.lag1 /= float64(slots - 1)
	return s
}

// TestCountAggregateParity is the acceptance test for the count-based
// MMOO mode: over >= 1e5 slots the empirical mean rate, per-slot
// variance, lag-1 autocovariance, and stationary ON-count distribution
// of NewMMOOCountAggregate must match NewMMOOAggregate within tight
// tolerances (both are also anchored to the exact analytic values, so a
// compensating drift in both modes cannot slip through). Seeds are
// fixed, so the test is deterministic; tolerances sit several standard
// errors above the expected estimator noise at this horizon.
func TestCountAggregateParity(t *testing.T) {
	const (
		n     = 60
		slots = 300000
	)
	m := envelope.PaperSource()
	perSource, err := NewMMOOAggregate(m, n, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	count, err := NewMMOOCountAggregate(m, n, rand.New(rand.NewSource(22)))
	if err != nil {
		t.Fatal(err)
	}
	ps := collectStats(t, perSource, n, m.Peak, slots)
	cs := collectStats(t, count, n, m.Peak, slots)

	// Exact values: per-flow emissions are Peak·Bernoulli(π) with lag-1
	// correlation r = p11+p22−1; n iid flows scale all three linearly.
	pi := m.OnProbability()
	r := m.P11 + m.P22 - 1
	wantMean := float64(n) * m.Peak * pi
	wantVar := float64(n) * m.Peak * m.Peak * pi * (1 - pi)
	wantLag1 := wantVar * r

	check := func(name string, got, other, want, relTol float64) {
		t.Helper()
		if math.Abs(got-other) > relTol*math.Abs(want) {
			t.Errorf("%s: count %g vs per-source %g differ beyond %.0f%% of %g",
				name, got, other, 100*relTol, want)
		}
		if math.Abs(got-want) > relTol*math.Abs(want) {
			t.Errorf("%s: count %g vs exact %g beyond %.0f%%", name, got, want, 100*relTol)
		}
		if math.Abs(other-want) > relTol*math.Abs(want) {
			t.Errorf("%s: per-source %g vs exact %g beyond %.0f%%", name, other, want, 100*relTol)
		}
	}
	check("mean rate", cs.mean, ps.mean, wantMean, 0.02)
	check("per-slot variance", cs.variance, ps.variance, wantVar, 0.06)
	check("lag-1 autocovariance", cs.lag1, ps.lag1, wantLag1, 0.08)

	// Stationary ON-count distribution: total-variation distance between
	// the two empirical histograms, and of each against the exact
	// stationary law Bin(n, π).
	exact := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		lgN, _ := math.Lgamma(float64(n) + 1)
		lgK, _ := math.Lgamma(float64(k) + 1)
		lgNK, _ := math.Lgamma(float64(n-k) + 1)
		exact[k] = math.Exp(lgN - lgK - lgNK + float64(k)*math.Log(pi) + float64(n-k)*math.Log1p(-pi))
	}
	tv := func(a, b []float64) float64 {
		d := 0.0
		for k := range a {
			d += math.Abs(a[k] - b[k])
		}
		return d / 2
	}
	if d := tv(cs.hist, ps.hist); d > 0.05 {
		t.Errorf("ON-count distribution: TV(count, per-source) = %g > 0.05", d)
	}
	if d := tv(cs.hist, exact); d > 0.05 {
		t.Errorf("ON-count distribution: TV(count, Bin(n, pi)) = %g > 0.05", d)
	}
	if d := tv(ps.hist, exact); d > 0.05 {
		t.Errorf("ON-count distribution: TV(per-source, Bin(n, pi)) = %g > 0.05", d)
	}
}

func TestCountAggregateValidation(t *testing.T) {
	m := envelope.PaperSource()
	if _, err := NewMMOOCountAggregate(m, -1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative size must be rejected")
	}
	if _, err := NewMMOOCountAggregate(m, 5, nil); err == nil {
		t.Error("nil RNG must be rejected")
	}
	if _, err := NewMMOOCountAggregate(envelope.MMOO{Peak: -1, P11: 0.9, P22: 0.9}, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid chain must be rejected")
	}
}

func TestCountAggregateZeroFlows(t *testing.T) {
	agg, err := NewMMOOCountAggregate(envelope.PaperSource(), 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v := agg.Next(); v != 0 {
			t.Fatalf("empty aggregate emitted %g", v)
		}
	}
	if agg.Size() != 0 || agg.OnCount() != 0 {
		t.Fatalf("empty aggregate reports size %d, on-count %d", agg.Size(), agg.OnCount())
	}
}

// TestCountAggregateNextAllocFree pins the count-based hot path at zero
// allocations per slot — the property the simulator's slot loop depends
// on (ISSUE 4 satellite; see also the core kernel pins in
// internal/core/alloc_test.go).
func TestCountAggregateNextAllocFree(t *testing.T) {
	agg, err := NewMMOOCountAggregate(envelope.PaperSource(), 60, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1000, func() { agg.Next() }); allocs != 0 {
		t.Errorf("CountAggregate.Next allocates %g times per slot, want 0", allocs)
	}
}
