package traffic

import (
	"math"
	"math/rand"
	"testing"

	"deltasched/internal/envelope"
	"deltasched/internal/minplus"
)

func TestMMOOMeanRate(t *testing.T) {
	m := envelope.PaperSource()
	rng := rand.New(rand.NewSource(1))
	src, err := NewMMOO(m, rng)
	if err != nil {
		t.Fatal(err)
	}
	const slots = 400000
	total := 0.0
	for i := 0; i < slots; i++ {
		total += src.Next()
	}
	got := total / slots
	want := m.MeanRate()
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("empirical mean rate %g, want ≈%g", got, want)
	}
}

func TestMMOOEmitsPeakOrNothing(t *testing.T) {
	m := envelope.PaperSource()
	src, err := NewMMOO(m, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		v := src.Next()
		if v != 0 && v != m.Peak {
			t.Fatalf("slot %d: emission %g is neither 0 nor peak %g", i, v, m.Peak)
		}
	}
}

func TestMMOOBurstiness(t *testing.T) {
	// With p22=0.9 the ON state persists ~10 slots: the lag-1
	// autocorrelation of emissions must be clearly positive.
	m := envelope.PaperSource()
	src, err := NewMMOO(m, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	const slots = 200000
	xs := make([]float64, slots)
	mean := 0.0
	for i := range xs {
		xs[i] = src.Next()
		mean += xs[i]
	}
	mean /= slots
	var num, den float64
	for i := 0; i+1 < slots; i++ {
		num += (xs[i] - mean) * (xs[i+1] - mean)
		den += (xs[i] - mean) * (xs[i] - mean)
	}
	if corr := num / den; corr < 0.5 {
		t.Fatalf("lag-1 autocorrelation %g, expected strongly positive for a bursty source", corr)
	}
}

func TestMMOOValidation(t *testing.T) {
	if _, err := NewMMOO(envelope.MMOO{Peak: -1, P11: 0.9, P22: 0.9}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("invalid chain must be rejected")
	}
	if _, err := NewMMOO(envelope.PaperSource(), nil); err == nil {
		t.Error("nil RNG must be rejected")
	}
}

func TestCBR(t *testing.T) {
	src := CBR{Rate: 2.5}
	for i := 0; i < 5; i++ {
		if got := src.Next(); got != 2.5 {
			t.Fatalf("CBR emitted %g, want 2.5", got)
		}
	}
}

func TestAggregate(t *testing.T) {
	agg := NewAggregate(CBR{Rate: 1}, CBR{Rate: 2}, CBR{Rate: 3})
	if got := agg.Next(); got != 6 {
		t.Fatalf("aggregate emitted %g, want 6", got)
	}
	if agg.Size() != 3 {
		t.Fatalf("aggregate size %d, want 3", agg.Size())
	}
}

func TestMMOOAggregateLawOfLargeNumbers(t *testing.T) {
	m := envelope.PaperSource()
	agg, err := NewMMOOAggregate(m, 50, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	const slots = 50000
	total := 0.0
	for i := 0; i < slots; i++ {
		total += agg.Next()
	}
	got := total / slots
	want := 50 * m.MeanRate()
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("aggregate mean rate %g, want ≈%g", got, want)
	}
}

func TestGreedyTracesEnvelope(t *testing.T) {
	env := minplus.Affine(2, 10) // burst 10, rate 2
	g, err := NewGreedy(env)
	if err != nil {
		t.Fatal(err)
	}
	cum := 0.0
	for slot := 0; slot < 20; slot++ {
		cum += g.Next()
		want := env.Eval(float64(slot + 1))
		if math.Abs(cum-want) > 1e-9 {
			t.Fatalf("slot %d: cumulative %g, want E(%d)=%g", slot, cum, slot+1, want)
		}
	}
}

func TestGreedyRejectsBadEnvelopes(t *testing.T) {
	if _, err := NewGreedy(minplus.Delay(3)); err == nil {
		t.Error("infinite envelope must be rejected")
	}
	dec, err := minplus.FromSegments(math.Inf(1), minplus.Segment{V0: 5, Slope: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGreedy(dec); err == nil {
		t.Error("decreasing envelope must be rejected")
	}
}

func TestDelayed(t *testing.T) {
	d := &Delayed{Start: 3, Src: CBR{Rate: 5}}
	var got []float64
	for i := 0; i < 6; i++ {
		got = append(got, d.Next())
	}
	want := []float64{0, 0, 0, 5, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: got %g, want %g", i, got[i], want[i])
		}
	}
}

func TestPulse(t *testing.T) {
	p := &Pulse{Start: 2, Size: 7}
	var total float64
	for i := 0; i < 10; i++ {
		v := p.Next()
		if i == 2 && v != 7 {
			t.Fatalf("pulse slot: got %g, want 7", v)
		}
		if i != 2 && v != 0 {
			t.Fatalf("slot %d: got %g, want 0", i, v)
		}
		total += v
	}
	if total != 7 {
		t.Fatalf("total emission %g, want 7", total)
	}
}

func TestTrace(t *testing.T) {
	tr := &Trace{Data: []float64{1, 0, 2.5, -3, 4}}
	want := []float64{1, 0, 2.5, 0, 4, 0, 0}
	for i, w := range want {
		if got := tr.Next(); got != w {
			t.Fatalf("slot %d: got %g, want %g", i, got, w)
		}
	}
}

func TestPeriodicOnOff(t *testing.T) {
	p := &PeriodicOnOff{Rate: 2, On: 2, Off: 3}
	want := []float64{2, 2, 0, 0, 0, 2, 2, 0, 0, 0}
	for i, w := range want {
		if got := p.Next(); got != w {
			t.Fatalf("slot %d: got %g, want %g", i, got, w)
		}
	}
	// Phase shift moves the burst.
	ph := &PeriodicOnOff{Rate: 2, On: 2, Off: 3, Phase: 2}
	want = []float64{0, 0, 0, 2, 2}
	for i, w := range want {
		if got := ph.Next(); got != w {
			t.Fatalf("phased slot %d: got %g, want %g", i, got, w)
		}
	}
	// Degenerate configurations stay silent.
	if z := (&PeriodicOnOff{Rate: 2}).Next(); z != 0 {
		t.Fatalf("degenerate source emitted %g", z)
	}
}

// TestMMOOAggregateSatisfiesEBB validates the analytical traffic model
// against the generator: the empirical violation frequency of the EBB
// increment bound P(A(s,t) > ρ(t−s)+σ) must stay below M·e^{−ασ} for a
// range of window lengths and thresholds. This ties the envelope package's
// math to the simulator's workload.
func TestMMOOAggregateSatisfiesEBB(t *testing.T) {
	m := envelope.PaperSource()
	const n = 20
	agg, err := NewMMOOAggregate(m, n, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	const slots = 300000
	xs := make([]float64, slots)
	for i := range xs {
		xs[i] = agg.Next()
	}
	// Prefix sums for O(1) window queries.
	cum := make([]float64, slots+1)
	for i, x := range xs {
		cum[i+1] = cum[i] + x
	}

	for _, alpha := range []float64{0.1, 0.5} {
		ebb, err := m.EBBAggregate(n, alpha)
		if err != nil {
			t.Fatal(err)
		}
		for _, window := range []int{5, 20, 100} {
			for _, sigma := range []float64{5, 15} {
				bound := ebb.Bound().At(sigma)
				viol := 0
				total := 0
				for s := 0; s+window <= slots; s += window / 2 {
					total++
					if cum[s+window]-cum[s] > ebb.Rho*float64(window)+sigma {
						viol++
					}
				}
				frac := float64(viol) / float64(total)
				// Allow estimation noise: the empirical frequency may not
				// exceed the analytical bound by more than a small margin.
				slack := 3 * math.Sqrt(bound/float64(total))
				if frac > bound+slack+1e-4 {
					t.Errorf("alpha=%g window=%d sigma=%g: empirical %g exceeds EBB bound %g",
						alpha, window, sigma, frac, bound)
				}
			}
		}
	}
}
