package traffic

import (
	"math/rand"
	"testing"

	"deltasched/internal/envelope"
	"deltasched/internal/minplus"
	"deltasched/internal/randx"
)

// TestFastRNGStreamParity pins the devirtualized paths against the
// original interface paths: a source built on the concrete *randx.Rand
// must emit the bit-identical per-slot sequence as one built on the
// equally-seeded *math/rand.Rand, for single MMOO flows, shared-RNG
// aggregates, and count aggregates. This is the property that lets the
// scenario runner swap its RNG without touching a single golden.
func TestFastRNGStreamParity(t *testing.T) {
	m := envelope.PaperSource()
	for _, seed := range []int64{1, 9, 42, -3} {
		legacyRNG := rand.New(rand.NewSource(seed))
		fastRNG := randx.NewRand(seed)

		legacyThrough, err := NewMMOOAggregate(m, 30, legacyRNG)
		if err != nil {
			t.Fatal(err)
		}
		fastThrough, err := NewMMOOAggregate(m, 30, fastRNG)
		if err != nil {
			t.Fatal(err)
		}
		if fastThrough.mm == nil {
			t.Fatal("aggregate on *randx.Rand did not take the devirtualized bank path")
		}
		legacySingle, err := NewMMOO(m, legacyRNG)
		if err != nil {
			t.Fatal(err)
		}
		fastSingle, err := NewMMOO(m, fastRNG)
		if err != nil {
			t.Fatal(err)
		}
		legacyCount, err := NewMMOOCountAggregate(m, 60, legacyRNG)
		if err != nil {
			t.Fatal(err)
		}
		fastCount, err := NewMMOOCountAggregate(m, 60, fastRNG)
		if err != nil {
			t.Fatal(err)
		}
		// Interleave all three source kinds on the shared RNGs so the
		// parity also covers cross-source stream positions.
		for i := 0; i < 20_000; i++ {
			if w, g := legacyThrough.Next(), fastThrough.Next(); w != g {
				t.Fatalf("seed %d slot %d: aggregate %x != %x", seed, i, w, g)
			}
			if w, g := legacySingle.Next(), fastSingle.Next(); w != g {
				t.Fatalf("seed %d slot %d: mmoo %x != %x", seed, i, w, g)
			}
			if w, g := legacyCount.Next(), fastCount.Next(); w != g {
				t.Fatalf("seed %d slot %d: countagg %x != %x", seed, i, w, g)
			}
		}
	}
}

// TestNextBlockMatchesNext pins the BlockSource contract on every
// implementation: NextBlock over ragged block sizes must reproduce the
// exact per-slot Next sequence, including RNG consumption order.
func TestNextBlockMatchesNext(t *testing.T) {
	m := envelope.PaperSource()
	env := minplus.Affine(0.7, 3)
	build := func(seed int64) map[string]Source {
		rng := randx.NewRand(seed)
		mmoo, err := NewMMOO(m, rng)
		if err != nil {
			t.Fatal(err)
		}
		slowMMOO, err := NewMMOO(m, rand.New(rand.NewSource(seed+100)))
		if err != nil {
			t.Fatal(err)
		}
		agg, err := NewMMOOAggregate(m, 7, rng)
		if err != nil {
			t.Fatal(err)
		}
		count, err := NewMMOOCountAggregate(m, 12, rng)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := NewGreedy(env)
		if err != nil {
			t.Fatal(err)
		}
		trace := &Trace{Data: []float64{1, 2, -3, 0, 4, 5, -1, 7}}
		return map[string]Source{
			"mmoo-fast":  mmoo,
			"mmoo-slow":  slowMMOO,
			"aggregate":  agg,
			"countagg":   count,
			"cbr":        CBR{Rate: 1.5},
			"greedy":     greedy,
			"trace":      trace,
			"pulse":      &Pulse{Start: 5, Size: 9},
			"delayed":    &Delayed{Start: 6, Src: &Trace{Data: []float64{2, 2, 2}}},
			"periodic":   &PeriodicOnOff{Rate: 2, On: 3, Off: 2, Phase: 1},
			"plain-next": nextOnly{CBR{Rate: 0.25}},
		}
	}
	// Two identically-seeded universes: one drained per slot, one in
	// ragged blocks (including zero-length fills).
	perSlot := build(77)
	blocked := build(77)
	sizes := []int{1, 3, 0, 16, 5, 2, 31, 8, 64, 11}
	names := make([]string, 0, len(perSlot))
	for name := range perSlot {
		names = append(names, name)
	}
	buf := make([]float64, 64)
	slot := 0
	for round := 0; round < 40; round++ {
		n := sizes[round%len(sizes)]
		for _, name := range names {
			want := make([]float64, n)
			for i := range want {
				want[i] = perSlot[name].Next()
			}
			got := buf[:n]
			FillBlock(blocked[name], got)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s: slot %d (round %d): block %x != per-slot %x",
						name, slot+i, round, got[i], want[i])
				}
			}
		}
		slot += n
	}
}

// nextOnly hides a source's NextBlock so FillBlock's per-slot fallback is
// exercised.
type nextOnly struct{ s Source }

func (n nextOnly) Next() float64 { return n.s.Next() }
