// Multiclass analyses one EDF link shared by three service classes
// (voice, video, bulk) with the paper's multi-flow single-node machinery
// (Section III-B): per-class probabilistic delay bounds from the Δ-matrix
// of an EDF scheduler, validated against a slotted simulation of the same
// node. It demonstrates that the Δ-scheduler abstraction handles arbitrary
// flow sets, not just the through/cross split of the end-to-end model.
//
// Run with:
//
//	go run ./examples/multiclass
package main

import (
	"fmt"
	"math/rand"

	"deltasched/internal/core"
	"deltasched/internal/envelope"
	"deltasched/internal/runner"
	"deltasched/internal/sim"
	"deltasched/internal/traffic"
)

type class struct {
	name     string
	flows    int
	deadline float64 // EDF per-node deadline [ms]
	source   envelope.MMOO
}

func main() {
	const (
		capacity = 50.0 // kbit per 1 ms slot (50 Mbps)
		eps      = 1e-4
		slots    = 400000
	)
	// Three classes over the same physical model, different populations
	// and deadlines.
	base := envelope.PaperSource()
	classes := []class{
		{name: "voice", flows: 40, deadline: 5, source: base},
		{name: "video", flows: 80, deadline: 20, source: base},
		{name: "bulk", flows: 120, deadline: 200, source: base},
	}

	fmt.Printf("EDF link at %g Mbps, ε = %.0e:\n\n", capacity, eps)
	fmt.Printf("%-8s %6s %10s %14s %14s %14s %10s\n",
		"class", "flows", "deadline", "bound [ms]", "sim p99.9", "sim max", "P(W>bound)")

	// Simulate the shared node once; measure each class.
	rng := rand.New(rand.NewSource(7))
	sources := make(map[core.FlowID]traffic.Source, len(classes))
	deadlines := make(map[core.FlowID]float64, len(classes))
	for i, cl := range classes {
		agg, err := traffic.NewMMOOAggregate(cl.source, cl.flows, rng)
		if err != nil {
			fail(err)
		}
		sources[core.FlowID(i)] = agg
		deadlines[core.FlowID(i)] = cl.deadline
	}
	node := &sim.SingleNode{C: capacity, Sched: sim.NewEDF(deadlines), Sources: sources}
	recs, err := node.Run(slots)
	if err != nil {
		fail(err)
	}

	for i, cl := range classes {
		// Analytical bound for class i: every other class is cross traffic
		// with Δ = d*_i − d*_k.
		alpha, _, err := core.OptimizeAlphaFunc(func(a float64) (float64, error) {
			through, cross, err := buildFlows(classes, i, a)
			if err != nil {
				return 0, err
			}
			r, err := core.DelayBoundStatNode(capacity, through, cross, eps)
			if err != nil {
				return 0, err
			}
			return r.D, nil
		}, 1e-3, 50)
		if err != nil {
			fail(err)
		}
		through, cross, err := buildFlows(classes, i, alpha)
		if err != nil {
			fail(err)
		}
		res, err := core.DelayBoundStatNode(capacity, through, cross, eps)
		if err != nil {
			fail(err)
		}

		dist := recs[core.FlowID(i)].Distribution()
		q, err := dist.Quantile(0.999)
		if err != nil {
			fail(err)
		}
		mx, err := dist.Max()
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-8s %6d %8gms %12.2fms %12dms %12dms %10.2g\n",
			cl.name, cl.flows, cl.deadline, res.D, q, mx, dist.ViolationFraction(res.D))
	}

	fmt.Println("\nEach class gets a bound matched to its own deadline; the simulated")
	fmt.Println("tails stay below the analytical promises with room to spare (the")
	fmt.Println("bounds hold for worst-case correlations the simulation cannot show).")
}

// buildFlows assembles the tagged class and its cross flows at decay α.
func buildFlows(classes []class, tagged int, alpha float64) (envelope.EBB, []core.StatFlow, error) {
	through, err := classes[tagged].source.EBBAggregate(float64(classes[tagged].flows), alpha)
	if err != nil {
		return envelope.EBB{}, nil, err
	}
	var cross []core.StatFlow
	for k, cl := range classes {
		if k == tagged {
			continue
		}
		ebb, err := cl.source.EBBAggregate(float64(cl.flows), alpha)
		if err != nil {
			return envelope.EBB{}, nil, err
		}
		cross = append(cross, core.StatFlow{
			EBB:   ebb,
			Delta: classes[tagged].deadline - cl.deadline,
		})
	}
	return through, cross, nil
}

// fail prints a one-line diagnosis and exits non-zero. The error
// taxonomy in internal/core lets an infeasible scenario (no finite
// bound exists) read as a finding rather than a crash.
func fail(err error) { runner.Fail("multiclass", err) }
