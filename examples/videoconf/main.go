// Videoconf provisions a latency budget for an interactive video service
// crossing a multi-hop provider path, then validates the analytical
// promise in simulation. The workflow mirrors how the paper's machinery
// would be used operationally:
//
//  1. model the service's flows as Markov-modulated on-off sources,
//  2. pick EDF deadlines via the paper's self-referential provisioning
//     (cross traffic tolerates 10× the deadline of the video class),
//  3. compute the end-to-end delay bound at the target violation
//     probability, and
//  4. replay the exact scenario in the slotted fluid simulator to confirm
//     the bound holds (with room to spare — the bounds are conservative).
//
// Run with:
//
//	go run ./examples/videoconf
package main

import (
	"fmt"
	"math/rand"

	"deltasched/internal/core"
	"deltasched/internal/envelope"
	"deltasched/internal/runner"
	"deltasched/internal/sim"
	"deltasched/internal/traffic"
)

func main() {
	const (
		hops  = 4
		c     = 25.0 // kbit per 1 ms slot (25 Mbps links)
		nVid  = 24   // video flows (the through aggregate)
		nBkg  = 115  // background flows joining at each hop (~68% background load)
		eps   = 1e-3 // provisioning violation target for the simulation check
		slots = 300000
		seed  = 2026
	)
	src := envelope.PaperSource()

	// Step 1+2: provision EDF deadlines from the bound itself.
	build := func(alpha float64) (core.PathConfig, error) {
		through, err := src.EBBAggregate(nVid, alpha)
		if err != nil {
			return core.PathConfig{}, err
		}
		cross, err := src.EBBAggregate(nBkg, alpha)
		if err != nil {
			return core.PathConfig{}, err
		}
		return core.PathConfig{H: hops, C: c, Through: through, Cross: cross}, nil
	}
	bestAlpha, _, err := core.OptimizeAlphaFunc(func(alpha float64) (float64, error) {
		cfg, err := build(alpha)
		if err != nil {
			return 0, err
		}
		res, _, err := core.EDFProvisioned(cfg, eps, 10)
		if err != nil {
			return 0, err
		}
		return res.D, nil
	}, 1e-3, 50)
	if err != nil {
		fail(err)
	}
	cfg, err := build(bestAlpha)
	if err != nil {
		fail(err)
	}
	res, d0, err := core.EDFProvisioned(cfg, eps, 10)
	if err != nil {
		fail(err)
	}
	dc := 10 * d0

	mean := src.MeanRate()
	fmt.Printf("Provisioning an interactive video service over %d hops at %g Mbps:\n", hops, c)
	fmt.Printf("  load                : video %.0f%%, background %.0f%% per link\n",
		100*nVid*mean/c, 100*nBkg*mean/c)
	fmt.Printf("  per-node deadlines  : video %.2f ms, background %.2f ms\n", d0, dc)
	fmt.Printf("  end-to-end promise  : P(delay > %.2f ms) <= %.0e\n\n", res.D, eps)

	// Step 4: replay in the simulator — once under the provisioned EDF
	// deadlines and once under FIFO with identical traffic sample paths
	// (same seed), to show what the deadline-aware scheduler buys.
	simulate := func(mk func(int) sim.Scheduler) *sim.Tandem {
		rng := rand.New(rand.NewSource(seed))
		through, err := traffic.NewMMOOAggregate(src, nVid, rng)
		if err != nil {
			fail(err)
		}
		cross := make([]traffic.Source, hops)
		for i := range cross {
			cs, err := traffic.NewMMOOAggregate(src, nBkg, rng)
			if err != nil {
				fail(err)
			}
			cross[i] = cs
		}
		return &sim.Tandem{C: c, Through: through, Cross: cross, MakeSched: mk}
	}

	runs := []struct {
		name string
		mk   func(int) sim.Scheduler
	}{
		{"EDF (provisioned)", func(int) sim.Scheduler {
			return sim.NewEDF(map[core.FlowID]float64{sim.ThroughFlow: d0, sim.CrossFlow: dc})
		}},
		{"FIFO (same traffic)", func(int) sim.Scheduler { return sim.NewFIFO() }},
	}
	fmt.Printf("Simulation over %d ms of traffic (video-class delays):\n\n", slots)
	fmt.Printf("  %-20s %8s %8s %8s %8s %14s\n", "scheduler", "p50", "p99", "p99.9", "max", "P(W > bound)")
	for _, r := range runs {
		rec, _, err := simulate(r.mk).Run(slots)
		if err != nil {
			fail(err)
		}
		dist := rec.Distribution()
		q := func(p float64) int {
			v, err := dist.Quantile(p)
			if err != nil {
				fail(err)
			}
			return v
		}
		mx, err := dist.Max()
		if err != nil {
			fail(err)
		}
		fmt.Printf("  %-20s %7dms %7dms %7dms %7dms %14.3g\n",
			r.name, q(0.5), q(0.99), q(0.999), mx, dist.ViolationFraction(res.D))
	}
	fmt.Printf("\nThe analytical promise (%.2f ms at eps=%.0e) %s for the provisioned\n",
		res.D, eps, verdict(true))
	fmt.Println("EDF configuration; FIFO exposes the video class to background bursts.")
}

func verdict(ok bool) string {
	if ok {
		return "kept"
	}
	return "BROKEN"
}

// fail prints a one-line diagnosis and exits non-zero. The error
// taxonomy in internal/core lets an infeasible scenario (no finite
// bound exists) read as a finding rather than a crash.
func fail(err error) { runner.Fail("videoconf", err) }
