// Quickstart: compute probabilistic end-to-end delay bounds for a flow
// crossing a multi-hop path under different link schedulers, using the
// analysis of "Does Link Scheduling Matter on Long Paths?" (ICDCS 2010).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"deltasched/internal/core"
	"deltasched/internal/envelope"
	"deltasched/internal/runner"
)

func main() {
	// Traffic: aggregates of the paper's Markov-modulated on-off sources
	// (1.5 Mbps peak, ≈0.15 Mbps mean per flow, 1 ms slots).
	src := envelope.PaperSource()

	// A path of 5 nodes at 100 Mbps, 100 through flows and 200 cross flows
	// joining at every hop (≈45% total utilization).
	const (
		hops = 5
		c    = 100.0 // kbit per 1 ms slot = 100 Mbps
		n0   = 100
		nc   = 200
		eps  = 1e-9 // one-in-a-billion violation probability
	)

	// The EBB decay α is a free modeling parameter; OptimizeAlpha sweeps it.
	build := func(delta float64) func(alpha float64) (core.PathConfig, error) {
		return func(alpha float64) (core.PathConfig, error) {
			through, err := src.EBBAggregate(n0, alpha)
			if err != nil {
				return core.PathConfig{}, err
			}
			cross, err := src.EBBAggregate(nc, alpha)
			if err != nil {
				return core.PathConfig{}, err
			}
			return core.PathConfig{H: hops, C: c, Through: through, Cross: cross, Delta0c: delta}, nil
		}
	}

	schedulers := []struct {
		name  string
		delta float64 // the Δ_{0,c} constant that summarizes the scheduler
	}{
		{"blind multiplexing (worst case)", math.Inf(1)},
		{"FIFO", 0},
		{"EDF, through deadline 10 ms tighter", -10},
		{"strict priority for the through flow", math.Inf(-1)},
	}

	fmt.Printf("End-to-end delay bounds, %d hops, P(W > d) <= %.0e:\n\n", hops, eps)
	for _, s := range schedulers {
		res, err := core.OptimizeAlpha(build(s.delta), eps, 1e-3, 50)
		if err != nil {
			fail(fmt.Errorf("%s: %w", s.name, err))
		}
		fmt.Printf("  %-38s d = %7.2f ms\n", s.name, res.D)
	}

	fmt.Println("\nThe spread between these numbers is the answer to the paper's title")
	fmt.Println("question at this path length and load: scheduling still matters here.")
}

// fail prints a one-line diagnosis and exits non-zero. The error
// taxonomy in internal/core lets an infeasible scenario (no finite
// bound exists) read as a finding rather than a crash.
func fail(err error) { runner.Fail("quickstart", err) }
