// Longpath asks the paper's title question directly: does the choice of
// the link scheduler still matter as the path gets long? It sweeps the
// path length H, computes end-to-end delay bounds for FIFO, blind
// multiplexing and EDF at two load levels, and reports both the absolute
// bounds and the FIFO/BMUX and EDF/BMUX ratios whose evolution with H is
// the paper's central finding: FIFO converges to the blind-multiplexing
// worst case, EDF keeps a persistent advantage.
//
// Run with:
//
//	go run ./examples/longpath
package main

import (
	"fmt"
	"os"

	"deltasched/internal/experiments"
	"deltasched/internal/plot"
	"deltasched/internal/runner"
)

func main() {
	setup := experiments.PaperSetup()
	hs := []int{1, 2, 3, 5, 8, 12, 16, 24}

	for _, util := range []float64{0.3, 0.7} {
		n := setup.FlowCount(util) / 2 // equal through and cross populations

		var fifoRatio, edfRatio plot.Series
		fifoRatio.Label = "FIFO / BMUX"
		edfRatio.Label = "EDF(d*c=10·d*0) / BMUX"

		fmt.Printf("\n=== total utilization %.0f%% ===\n", util*100)
		fmt.Printf("%4s %12s %12s %12s %12s %12s\n", "H", "BMUX [ms]", "FIFO [ms]", "EDF [ms]", "FIFO/BMUX", "EDF/BMUX")
		for _, h := range hs {
			bmux, err := setup.Bound(experiments.BMUX, h, n, n)
			if err != nil {
				fail(err)
			}
			fifo, err := setup.Bound(experiments.FIFO, h, n, n)
			if err != nil {
				fail(err)
			}
			edf, err := setup.Bound(experiments.EDFRatio10, h, n, n)
			if err != nil {
				fail(err)
			}
			fmt.Printf("%4d %12.2f %12.2f %12.2f %12.3f %12.3f\n",
				h, bmux, fifo, edf, fifo/bmux, edf/bmux)
			fifoRatio.X = append(fifoRatio.X, float64(h))
			fifoRatio.Y = append(fifoRatio.Y, fifo/bmux)
			edfRatio.X = append(edfRatio.X, float64(h))
			edfRatio.Y = append(edfRatio.Y, edf/bmux)
		}

		fmt.Println()
		if err := plot.ASCII(os.Stdout, plot.Options{
			Title:  fmt.Sprintf("Delay-bound ratio vs path length (U=%.0f%%) — 1.0 means scheduling no longer matters", util*100),
			XLabel: "path length H",
			YLabel: "ratio to the blind-multiplexing bound",
			Height: 16,
		}, fifoRatio, edfRatio); err != nil {
			fail(err)
		}
	}

	fmt.Println("\nReading: the FIFO curve climbs to 1 — on long paths FIFO delays are")
	fmt.Println("as bad as treating the flow with the lowest priority. The EDF curve")
	fmt.Println("stays well below 1: deadline-based scheduling keeps differentiating")
	fmt.Println("flows no matter how long the path gets.")
}

// fail prints a one-line diagnosis and exits non-zero. The error
// taxonomy in internal/core lets an infeasible scenario (no finite
// bound exists) read as a finding rather than a crash.
func fail(err error) { runner.Fail("longpath", err) }
