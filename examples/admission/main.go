// Admission demonstrates the single-node machinery of the paper's
// Section III as an admission-control procedure: leaky-bucket video flows
// with a hard per-node deadline are admitted onto a shared link as long as
// the deterministic schedulability condition (Eq. 24) — which Theorem 2
// proves necessary *and* sufficient for concave envelopes — still holds
// for every admitted flow. The run compares how many flows FIFO, EDF and
// static priority can carry, illustrating that the tight condition (not
// just a sufficient one) is what makes the comparison meaningful.
//
// Run with:
//
//	go run ./examples/admission
package main

import (
	"errors"
	"fmt"

	"deltasched/internal/core"
	"deltasched/internal/minplus"
	"deltasched/internal/runner"
)

// flowClass describes one service class.
type flowClass struct {
	name     string
	envelope minplus.Curve // per-flow arrival envelope (kbit, slots of 1 ms)
	deadline float64       // required per-node delay [ms]
}

func main() {
	const linkRate = 100.0 // kbit per ms (100 Mbps)

	classes := []flowClass{
		{name: "voice", envelope: minplus.Affine(0.1, 0.4), deadline: 4},  // 100 kbps, 400 bit bursts
		{name: "video", envelope: minplus.Affine(2.0, 15), deadline: 40},  // 2 Mbps, 15 kbit bursts
		{name: "bulk", envelope: minplus.Affine(4.0, 60), deadline: 1000}, // 4 Mbps, 60 kbit bursts
	}

	mix := map[string]int{"voice": 4, "video": 1, "bulk": 1} // admission ratio per round

	policies := []struct {
		name string
		make func(deadline map[core.FlowID]float64, class map[core.FlowID]string) core.Policy
	}{
		{"FIFO", func(map[core.FlowID]float64, map[core.FlowID]string) core.Policy { return core.FIFO{} }},
		{"EDF", func(d map[core.FlowID]float64, _ map[core.FlowID]string) core.Policy { return core.EDF{Deadline: d} }},
		{"SP (voice>video>bulk)", func(_ map[core.FlowID]float64, cls map[core.FlowID]string) core.Policy {
			level := make(map[core.FlowID]int, len(cls))
			for f, c := range cls {
				switch c {
				case "voice":
					level[f] = 3
				case "video":
					level[f] = 2
				default:
					level[f] = 1
				}
			}
			return core.StaticPriority{Level: level}
		}},
	}

	fmt.Printf("Admission control on a %g Mbps link (mix %v per round):\n\n", linkRate, mix)
	for _, pol := range policies {
		admitted, byClass, err := admitGreedy(linkRate, classes, mix, pol.make)
		if err != nil {
			fail(err)
		}
		util := 0.0
		for _, cl := range classes {
			util += float64(byClass[cl.name]) * cl.envelope.TailSlope()
		}
		fmt.Printf("  %-22s admits %3d flows (%v), utilization %.1f%%\n",
			pol.name, admitted, byClass, 100*util/linkRate)
	}

	fmt.Println("\nEDF admits the most flows: it spends the link's slack exactly where")
	fmt.Println("deadlines allow it, and the paper's tight condition certifies that no")
	fmt.Println("schedulable set is rejected. FIFO must meet the tightest deadline for")
	fmt.Println("everyone; strict priority sacrifices the bulk class early.")
}

// admitGreedy admits flows round-robin through the class mix until the
// schedulability condition fails for any admitted flow.
func admitGreedy(
	linkRate float64,
	classes []flowClass,
	mix map[string]int,
	mkPolicy func(map[core.FlowID]float64, map[core.FlowID]string) core.Policy,
) (int, map[string]int, error) {
	envs := make(map[core.FlowID]minplus.Curve)
	deadlines := make(map[core.FlowID]float64)
	classOf := make(map[core.FlowID]string)
	byClass := make(map[string]int)
	next := core.FlowID(0)

	classByName := make(map[string]flowClass, len(classes))
	for _, c := range classes {
		classByName[c.name] = c
	}

	feasibleAll := func() (bool, error) {
		p := mkPolicy(deadlines, classOf)
		for f := range envs {
			cl := classByName[classOf[f]]
			ok, err := core.SchedulableDet(linkRate, f, envs, p, cl.deadline)
			if err != nil {
				if errors.Is(err, core.ErrUnstable) {
					return false, nil
				}
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}

	for round := 0; round < 10000; round++ {
		progressed := false
		for _, cl := range classes {
			for i := 0; i < mix[cl.name]; i++ {
				f := next
				envs[f] = cl.envelope
				deadlines[f] = cl.deadline
				classOf[f] = cl.name
				ok, err := feasibleAll()
				if err != nil {
					return 0, nil, err
				}
				if !ok {
					delete(envs, f)
					delete(deadlines, f)
					delete(classOf, f)
					return int(next), byClass, nil
				}
				next++
				byClass[cl.name]++
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return int(next), byClass, nil
}

// fail prints a one-line diagnosis and exits non-zero. The error
// taxonomy in internal/core lets an infeasible scenario (no finite
// bound exists) read as a finding rather than a crash.
func fail(err error) { runner.Fail("admission", err) }
