// Benchmarks regenerating every figure of the paper's evaluation section
// (Figs. 2–4 — the paper has no tables) plus micro-benchmarks for the
// computational kernels. `go test -bench=. -benchmem` runs them all; the
// full-resolution figures are produced by cmd/paperfigs.
package main

import (
	"context"
	"fmt"
	"math"
	"testing"

	"deltasched/internal/core"
	"deltasched/internal/envelope"
	"deltasched/internal/experiments"
	"deltasched/internal/minplus"
	"deltasched/internal/obs"
	"deltasched/internal/randx"
	"deltasched/internal/scenario"
	"deltasched/internal/sim"
	"deltasched/internal/traffic"
)

// BenchmarkFig2Example1 regenerates a reduced-resolution version of
// Fig. 2: delay bound vs total utilization for BMUX/FIFO/EDF at
// H ∈ {2, 5, 10}.
func BenchmarkFig2Example1(b *testing.B) {
	s := experiments.PaperSetup()
	utils := []float64{0.2, 0.5, 0.8}
	for i := 0; i < b.N; i++ {
		series, err := s.Example1([]int{2, 5, 10}, utils)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 9 {
			b.Fatalf("expected 9 series, got %d", len(series))
		}
		reportLastPoint(b, series[0].Y)
	}
}

// BenchmarkFig3Example2 regenerates a reduced-resolution version of
// Fig. 3: delay bound vs traffic mix at U=50% for the four schedulers.
func BenchmarkFig3Example2(b *testing.B) {
	s := experiments.PaperSetup()
	mixes := []float64{0.25, 0.5, 0.75}
	for i := 0; i < b.N; i++ {
		series, err := s.Example2([]int{2, 5}, mixes)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 8 {
			b.Fatalf("expected 8 series, got %d", len(series))
		}
		reportLastPoint(b, series[0].Y)
	}
}

// BenchmarkFig4Example3 regenerates a reduced-resolution version of
// Fig. 4: delay bound vs path length, including the additive baseline.
func BenchmarkFig4Example3(b *testing.B) {
	s := experiments.PaperSetup()
	hs := []int{1, 2, 4, 8}
	for i := 0; i < b.N; i++ {
		series, err := s.Example3(hs, []float64{0.5})
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 4 {
			b.Fatalf("expected 4 series, got %d", len(series))
		}
		reportLastPoint(b, series[0].Y)
	}
}

func reportLastPoint(b *testing.B, ys []float64) {
	b.Helper()
	last := ys[len(ys)-1]
	if !math.IsNaN(last) {
		b.ReportMetric(last, "ms-last-point")
	}
}

// BenchmarkDelayBound measures one full γ-optimized end-to-end bound.
func BenchmarkDelayBound(b *testing.B) {
	cfg := core.PathConfig{
		H:       10,
		C:       100,
		Through: envelope.EBB{M: 1, Rho: 15, Alpha: 0.1},
		Cross:   envelope.EBB{M: 1, Rho: 35, Alpha: 0.1},
		Delta0c: 0,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.DelayBound(cfg, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelayBoundBatched measures the batch γ-grid API: a 48-point
// grid priced in one Scratch.DelayBoundAtGammas call with the result
// slice round-tripped as dst, the allocation-free steady state of a
// figure sweep. The per-γ metric is directly comparable to
// BenchmarkInnerMinimize's single-probe cost.
func BenchmarkDelayBoundBatched(b *testing.B) {
	cfg := core.PathConfig{
		H:       10,
		C:       100,
		Through: envelope.EBB{M: 1, Rho: 15, Alpha: 0.1},
		Cross:   envelope.EBB{M: 1, Rho: 35, Alpha: 0.1},
		Delta0c: 0,
	}
	gmax := cfg.GammaMax()
	gammas := make([]float64, 0, 48)
	for i := 1; i <= 48; i++ {
		gammas = append(gammas, gmax*float64(i)/49)
	}
	var s core.Scratch
	dst, err := s.DelayBoundAtGammas(cfg, 1e-9, gammas, nil) // warm the buffers
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, err = s.DelayBoundAtGammas(cfg, 1e-9, gammas, dst)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(gammas)), "ns/gamma")
}

// BenchmarkInnerMinimize measures the exact solver for the optimization
// problem of Eq. (38) in isolation, through a reused core.Scratch — the
// steady-state regime of the γ-sweeps, which must stay at 0 allocs/op
// (pinned by internal/core's TestDelayBoundAtGammaAllocFree).
func BenchmarkInnerMinimize(b *testing.B) {
	cfg := core.PathConfig{
		H:       20,
		C:       100,
		Through: envelope.EBB{M: 1, Rho: 15, Alpha: 0.1},
		Cross:   envelope.EBB{M: 1, Rho: 35, Alpha: 0.1},
		Delta0c: -5,
	}
	var s core.Scratch
	if _, err := s.DelayBoundAtGamma(cfg, 1e-9, 0.5); err != nil { // warm the buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.DelayBoundAtGamma(cfg, 1e-9, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvolve measures exact min-plus convolution of piecewise-
// linear curves.
func BenchmarkConvolve(b *testing.B) {
	f := minplus.Min(minplus.Affine(2, 30), minplus.Min(minplus.Affine(1.2, 60), minplus.Affine(0.8, 100)))
	g := minplus.Max(minplus.RateLatency(5, 4), minplus.RateLatency(9, 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = minplus.Convolve(f, g)
	}
}

// BenchmarkEffectiveBandwidth measures the closed-form MMOO effective
// bandwidth used inside every α-sweep iteration.
func BenchmarkEffectiveBandwidth(b *testing.B) {
	m := envelope.PaperSource()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.EffectiveBandwidth(0.01 + float64(i%100)*1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorSlots measures tandem simulation throughput in
// slots/op for the Fig. 1 topology at moderate load.
func BenchmarkSimulatorSlots(b *testing.B) {
	tan := benchTandem(b, false, 3)
	b.ReportAllocs()
	b.ResetTimer()
	const slotsPerOp = 2000
	for i := 0; i < b.N; i++ {
		if _, _, err := tan.Run(slotsPerOp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(slotsPerOp, "slots/op")
}

// BenchmarkSimulatorSlotsH30 is BenchmarkSimulatorSlots at tandem depth
// H = 30 — the long paths of the paper's title — so per-node serve cost
// and depth scaling of the slot loop are tracked, not just the 3-node
// figure topology.
func BenchmarkSimulatorSlotsH30(b *testing.B) {
	tan := benchTandem(b, false, 30)
	b.ReportAllocs()
	b.ResetTimer()
	const slotsPerOp = 2000
	for i := 0; i < b.N; i++ {
		if _, _, err := tan.Run(slotsPerOp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(slotsPerOp, "slots/op")
}

// BenchmarkSimulatorSlotsCountAgg is BenchmarkSimulatorSlots with the
// O(1)-per-slot ON-count aggregates instead of per-flow draws (ISSUE 4):
// the same topology and the same arrival law, sampled with two binomial
// draws per aggregate per slot instead of 210 Bernoulli draws.
func BenchmarkSimulatorSlotsCountAgg(b *testing.B) {
	tan := benchTandem(b, true, 3)
	b.ReportAllocs()
	b.ResetTimer()
	const slotsPerOp = 2000
	for i := 0; i < b.N; i++ {
		if _, _, err := tan.Run(slotsPerOp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(slotsPerOp, "slots/op")
}

// BenchmarkReplicatedTandem measures the replicated-execution layer
// (ISSUE 5) end to end through the tandem scenario: a fig2-scale point
// (Fig. 1 topology, count aggregates) with its slot budget split into 8
// replications, run at 1/2/4/8 workers, against the reps=1 single run of
// the same budget. On a machine with enough cores, reps=8 at 8 workers
// approaches the per-replication wall-clock — the near-linear speedup
// the replication layer exists for; the recorded curve is whatever the
// benchmarking machine's core count allows.
func BenchmarkReplicatedTandem(b *testing.B) {
	sc, err := scenario.Get("tandem")
	if err != nil {
		b.Fatal(err)
	}
	const totalSlots = 80000
	run := func(b *testing.B, reps, workers int) {
		cfg := scenario.Config{
			"H": 3, "n0": 30, "nc": 60, "sched": "fifo", "agg": "count",
			"slots": totalSlots, "reps": reps, "simworkers": workers, "seed": 9,
		}
		pts, err := sc.Points(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sc.Evaluate(context.Background(), cfg, pts[0], scenario.Sim); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(totalSlots, "slots/op")
	}
	b.Run("reps=1", func(b *testing.B) { run(b, 1, 1) })
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("reps=8/workers=%d", w), func(b *testing.B) { run(b, 8, w) })
	}
}

// benchTandem builds the Fig. 1 topology used by the simulator
// benchmarks: H FIFO nodes, 30 through + H×60 cross MMOO flows, on the
// same devirtualized RNG the scenario runner uses (stream-identical to
// the historical rand.New(rand.NewSource(9))). countAgg selects the O(1)
// ON-count chain over per-flow draws.
func benchTandem(b *testing.B, countAgg bool, h int) *sim.Tandem {
	b.Helper()
	m := envelope.PaperSource()
	rng := randx.NewRand(9)
	mkAgg := func(n int) (traffic.Source, error) {
		if countAgg {
			return traffic.NewMMOOCountAggregate(m, n, rng)
		}
		return traffic.NewMMOOAggregate(m, n, rng)
	}
	through, err := mkAgg(30)
	if err != nil {
		b.Fatal(err)
	}
	cross := make([]traffic.Source, h)
	for i := range cross {
		cs, err := mkAgg(60)
		if err != nil {
			b.Fatal(err)
		}
		cross[i] = cs
	}
	return &sim.Tandem{C: 20, Through: through, Cross: cross,
		MakeSched: func(int) sim.Scheduler { return sim.NewFIFO() }}
}

// BenchmarkNetworkRunInstrumented is BenchmarkSimulatorSlots with a
// per-slot observability probe attached: the gap between the two is the
// cost of *enabled* instrumentation. The disabled-probe overhead — the
// cost the probe field adds when nil — is BenchmarkSimulatorSlots against
// the pre-observability seed, measured at < 2% (one nil check per slot;
// see DESIGN.md's Observability section).
func BenchmarkNetworkRunInstrumented(b *testing.B) {
	tan := benchTandem(b, false, 3)
	probe := &obs.SimProbe{}
	tan.Probe = probe
	b.ReportAllocs()
	b.ResetTimer()
	const slotsPerOp = 2000
	for i := 0; i < b.N; i++ {
		if _, _, err := tan.Run(slotsPerOp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(slotsPerOp, "slots/op")
	if len(probe.Summaries()) != 3 {
		b.Fatal("probe recorded nothing")
	}
}

// BenchmarkNetworkRunSampledProbe is the instrumented run at a 100-slot
// sampling stride — the recommended setting for long production runs.
func BenchmarkNetworkRunSampledProbe(b *testing.B) {
	tan := benchTandem(b, false, 3)
	tan.Probe = &obs.SimProbe{Every: 100}
	b.ReportAllocs()
	b.ResetTimer()
	const slotsPerOp = 2000
	for i := 0; i < b.N; i++ {
		if _, _, err := tan.Run(slotsPerOp); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(slotsPerOp, "slots/op")
}

// BenchmarkEDFProvisioning measures the deadline fixed point of the
// paper's EDF configuration.
func BenchmarkEDFProvisioning(b *testing.B) {
	cfg := core.PathConfig{
		H:       5,
		C:       100,
		Through: envelope.EBB{M: 1, Rho: 15, Alpha: 0.1},
		Cross:   envelope.EBB{M: 1, Rho: 35, Alpha: 0.1},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.EDFProvisioned(cfg, 1e-9, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdditiveBound measures the node-by-node baseline of Fig. 4.
func BenchmarkAdditiveBound(b *testing.B) {
	cfg := core.PathConfig{
		H:       10,
		C:       100,
		Through: envelope.EBB{M: 1, Rho: 15, Alpha: 0.1},
		Cross:   envelope.EBB{M: 1, Rho: 35, Alpha: 0.1},
		Delta0c: math.Inf(1),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.AdditiveBound(cfg, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}
